#include "storage/erel_format.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/math_util.h"
#include "common/str_util.h"
#include "core/column_store.h"
#include "core/fault_injection.h"
#include "storage/erel_internal.h"
#include "storage/erel_v3.h"
#include "storage/mmap_file.h"
#include "text/evidence_literal.h"

namespace evident {

namespace {

/// Quotes a definite value if needed so Value::Parse round-trips it:
/// strings that would parse as numbers get quoted.
std::string WriteDefiniteValue(const Value& v) {
  if (!v.is_string()) return v.ToString();
  const Value reparsed = Value::Parse(v.string_value());
  if (reparsed.is_string()) return v.string_value();
  return "\"" + v.string_value() + "\"";
}

}  // namespace

std::string WriteErel(const Catalog& catalog, int mass_decimals) {
  // One snapshot for the whole walk: the output is a consistent catalog
  // version even if another thread republishes mid-serialization.
  const std::shared_ptr<const CatalogSnapshot> snapshot = catalog.Snapshot();
  std::ostringstream os;
  os << "# evident .erel catalog\n";
  for (const std::string& name : snapshot->DomainNames()) {
    const DomainPtr domain = snapshot->GetDomain(name).value();
    os << "domain " << name << ":";
    for (size_t i = 0; i < domain->size(); ++i) {
      os << (i ? ", " : " ") << domain->value(i);
    }
    os << "\n";
  }
  for (const auto& [name, rel] : snapshot->relations()) {
    os << "\nrelation " << name << "\n";
    for (const AttributeDef& attr : rel->schema()->attributes()) {
      os << "attr " << attr.name << " " << AttributeKindToString(attr.kind);
      if (attr.is_uncertain()) os << " " << attr.domain->name();
      os << "\n";
    }
    for (const ExtendedTuple& t : rel->rows()) {
      os << "row ";
      for (size_t c = 0; c < t.cells.size(); ++c) {
        if (c) os << " | ";
        if (CellIsValue(t.cells[c])) {
          os << WriteDefiniteValue(std::get<Value>(t.cells[c]));
        } else {
          os << std::get<EvidenceSet>(t.cells[c]).ToString(mass_decimals);
        }
      }
      os << " | " << t.membership.ToString(mass_decimals) << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// v2 column image. The layout is documented bytes-exactly in
// erel_format.h; writer and reader below mirror it section for section.

namespace {

constexpr char kColumnImageMagic[] = "EVCIMG";  // + 2 version digits
constexpr char kColumnImageVersion[] = "02";
constexpr char kColumnImageVersionV3[] = "03";
constexpr char kChecksumTrailerMagic[] = "EVCRC001";
constexpr size_t kChecksumTrailerSize = 12;  // 8-byte magic + u32 CRC
constexpr uint32_t kNoDomain = std::numeric_limits<uint32_t>::max();

using erel_detail::ByteReader;
using erel_detail::Crc32;
using erel_detail::kStatisticsFooterMagic;
using erel_detail::PutF64;
using erel_detail::PutStr;
using erel_detail::PutU32;
using erel_detail::PutU64;
using erel_detail::PutU8;
using erel_detail::PutValue;
using erel_detail::ReadStatisticsBody;

/// Validates one packed evidence column: the v2 whole-column wrapper
/// around the shared range validator — offset-array shape first, then
/// every row, then arena-size agreement (error order is part of the
/// pinned v2 messages).
Status ValidateEvidenceColumn(const std::string& attr_name, size_t universe,
                              const ColumnStore::EvidenceColumn& col,
                              size_t rows) {
  if (col.offsets.size() != rows + 1 || col.offsets[0] != 0) {
    return Status::ParseError("attribute '" + attr_name +
                              "': malformed focal offset array");
  }
  EVIDENT_RETURN_NOT_OK(
      erel_detail::ValidateEvidenceRows(attr_name, universe, col, 0, rows));
  if (col.offsets[rows] != col.words.size()) {
    return Status::ParseError("attribute '" + attr_name +
                              "': focal span arena size disagrees with the "
                              "offset array");
  }
  return Status::OK();
}

/// The v2 parse proper. Reports errors without source context; the
/// caller stamps each with the source and the byte position reached.
Result<Catalog> ReadErelColumnImageBody(ByteReader& in,
                                        const std::string& data, size_t limit,
                                        bool checksum_ok) {
  if (!checksum_ok) {
    return Status::ParseError(
        "column-image checksum mismatch: the file is corrupt");
  }
  if (limit < 8 || data.compare(6, 2, kColumnImageVersion) != 0) {
    return Status::ParseError(
        "unsupported column-image version (expected EVCIMG" +
        std::string(kColumnImageVersion) + ")");
  }
  {
    const char* magic;
    EVIDENT_RETURN_NOT_OK(in.Take(8, "magic", &magic));
  }
  Catalog catalog;

  EVIDENT_ASSIGN_OR_RETURN(uint32_t domain_count, in.U32("domain count"));
  EVIDENT_RETURN_NOT_OK(in.CheckCount(domain_count, 8, "domain"));
  std::vector<DomainPtr> domains;
  domains.reserve(domain_count);
  for (uint32_t d = 0; d < domain_count; ++d) {
    EVIDENT_ASSIGN_OR_RETURN(std::string name, in.Str("domain name"));
    EVIDENT_ASSIGN_OR_RETURN(uint32_t value_count,
                             in.U32("domain value count"));
    EVIDENT_RETURN_NOT_OK(in.CheckCount(value_count, 1, "domain value"));
    std::vector<Value> values;
    values.reserve(value_count);
    for (uint32_t v = 0; v < value_count; ++v) {
      EVIDENT_ASSIGN_OR_RETURN(Value value, in.ReadValue("domain value"));
      values.push_back(std::move(value));
    }
    EVIDENT_ASSIGN_OR_RETURN(DomainPtr domain,
                             Domain::Make(std::move(name), std::move(values)));
    EVIDENT_RETURN_NOT_OK(catalog.RegisterDomain(domain));
    domains.push_back(std::move(domain));
  }

  EVIDENT_ASSIGN_OR_RETURN(uint32_t relation_count, in.U32("relation count"));
  EVIDENT_RETURN_NOT_OK(in.CheckCount(relation_count, 17, "relation"));
  // Stores are collected and registered only after the whole blob —
  // including the optional statistics footer — parsed cleanly.
  std::vector<ColumnStore> stores;
  stores.reserve(relation_count);
  for (uint32_t rel_index = 0; rel_index < relation_count; ++rel_index) {
    EVIDENT_ASSIGN_OR_RETURN(std::string rel_name, in.Str("relation name"));
    EVIDENT_ASSIGN_OR_RETURN(uint32_t attr_count,
                             in.U32("attribute count"));
    EVIDENT_RETURN_NOT_OK(in.CheckCount(attr_count, 9, "attribute"));
    std::vector<AttributeDef> attrs;
    attrs.reserve(attr_count);
    for (uint32_t a = 0; a < attr_count; ++a) {
      EVIDENT_ASSIGN_OR_RETURN(std::string attr_name,
                               in.Str("attribute name"));
      EVIDENT_ASSIGN_OR_RETURN(uint8_t kind, in.U8("attribute kind"));
      if (kind > 2) {
        return Status::ParseError("unknown attribute kind tag " +
                                  std::to_string(kind));
      }
      EVIDENT_ASSIGN_OR_RETURN(uint32_t domain_index,
                               in.U32("attribute domain index"));
      DomainPtr domain;
      if (domain_index != kNoDomain) {
        if (domain_index >= domains.size()) {
          return Status::ParseError("attribute '" + attr_name +
                                    "' references domain " +
                                    std::to_string(domain_index) +
                                    " of " + std::to_string(domains.size()));
        }
        domain = domains[domain_index];
      }
      attrs.emplace_back(std::move(attr_name),
                         static_cast<AttributeKind>(kind), std::move(domain));
    }
    EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema,
                             RelationSchema::Make(std::move(attrs)));
    EVIDENT_ASSIGN_OR_RETURN(uint64_t row_count, in.U64("row count"));
    EVIDENT_RETURN_NOT_OK(in.CheckCount(row_count, 16, "row"));
    const size_t rows = static_cast<size_t>(row_count);

    ColumnStore store = ColumnStore::EmptyLike(schema, rel_name);
    store.ReserveRows(rows);
    for (size_t a = 0; a < schema->size(); ++a) {
      const AttributeDef& attr = schema->attribute(a);
      EVIDENT_ASSIGN_OR_RETURN(uint8_t column_kind, in.U8("column kind"));
      if (column_kind != static_cast<uint8_t>(store.kind(a))) {
        return Status::ParseError(
            "attribute '" + attr.name + "' stored as column kind " +
            std::to_string(column_kind) +
            ", but its declaration implies kind " +
            std::to_string(static_cast<int>(store.kind(a))));
      }
      switch (store.kind(a)) {
        case ColumnStore::ColumnKind::kValue: {
          std::vector<Value>& dst = store.value_column_mut(a).values;
          dst.reserve(rows);
          for (size_t r = 0; r < rows; ++r) {
            EVIDENT_ASSIGN_OR_RETURN(Value v, in.ReadValue("column value"));
            if (attr.domain != nullptr && !attr.domain->Contains(v)) {
              return Status::ParseError(
                  "value " + v.ToString() + " outside domain of '" +
                  attr.name + "'");
            }
            dst.push_back(std::move(v));
          }
          break;
        }
        case ColumnStore::ColumnKind::kEvidence: {
          ColumnStore::EvidenceColumn& col = store.evidence_column_mut(a);
          EVIDENT_ASSIGN_OR_RETURN(uint64_t focal_count,
                                   in.U64("focal count"));
          EVIDENT_RETURN_NOT_OK(in.CheckCount(focal_count, 16, "focal"));
          if (focal_count > std::numeric_limits<uint32_t>::max()) {
            return Status::ParseError(
                "focal count exceeds the 32-bit offset space");
          }
          col.words.clear();
          col.words.reserve(focal_count);
          for (uint64_t k = 0; k < focal_count; ++k) {
            EVIDENT_ASSIGN_OR_RETURN(uint64_t w, in.U64("focal word"));
            col.words.push_back(w);
          }
          col.masses.reserve(focal_count);
          for (uint64_t k = 0; k < focal_count; ++k) {
            EVIDENT_ASSIGN_OR_RETURN(double m, in.F64("focal mass"));
            col.masses.push_back(m);
          }
          col.offsets.clear();
          col.offsets.reserve(rows + 1);
          for (size_t r = 0; r < rows + 1; ++r) {
            EVIDENT_ASSIGN_OR_RETURN(uint32_t o, in.U32("focal offset"));
            col.offsets.push_back(o);
          }
          EVIDENT_RETURN_NOT_OK(
              ValidateEvidenceColumn(attr.name, col.universe, col, rows));
          break;
        }
        case ColumnStore::ColumnKind::kBoxed: {
          std::vector<EvidenceSet>& dst = store.boxed_column_mut(a).sets;
          dst.reserve(rows);
          const size_t universe = attr.domain->size();
          for (size_t r = 0; r < rows; ++r) {
            EVIDENT_ASSIGN_OR_RETURN(uint32_t focal_count,
                                     in.U32("boxed focal count"));
            EVIDENT_RETURN_NOT_OK(
                in.CheckCount(focal_count, 12, "boxed focal"));
            MassFunction mass(universe);
            mass.Reserve(focal_count);
            for (uint32_t f = 0; f < focal_count; ++f) {
              EVIDENT_ASSIGN_OR_RETURN(uint32_t member_count,
                                       in.U32("boxed member count"));
              EVIDENT_RETURN_NOT_OK(
                  in.CheckCount(member_count, 4, "boxed member"));
              ValueSet set(universe);
              for (uint32_t e = 0; e < member_count; ++e) {
                EVIDENT_ASSIGN_OR_RETURN(uint32_t index,
                                         in.U32("boxed member index"));
                if (index >= universe) {
                  return Status::ParseError(
                      "boxed focal member " + std::to_string(index) +
                      " outside the " + std::to_string(universe) +
                      "-value frame of '" + attr.name + "'");
                }
                set.Set(index);
              }
              EVIDENT_ASSIGN_OR_RETURN(double m, in.F64("boxed mass"));
              EVIDENT_RETURN_NOT_OK(mass.Add(set, m));
            }
            Result<EvidenceSet> es = EvidenceSet::Make(attr.domain,
                                                       std::move(mass));
            if (!es.ok()) {
              return Status::ParseError(
                  "attribute '" + attr.name + "' row " + std::to_string(r) +
                  ": " + es.status().message());
            }
            dst.push_back(std::move(es).value());
          }
          break;
        }
      }
    }

    std::vector<double> sn(rows), sp(rows);
    for (size_t r = 0; r < rows; ++r) {
      EVIDENT_ASSIGN_OR_RETURN(sn[r], in.F64("sn"));
    }
    for (size_t r = 0; r < rows; ++r) {
      EVIDENT_ASSIGN_OR_RETURN(sp[r], in.F64("sp"));
    }
    for (size_t r = 0; r < rows; ++r) {
      const SupportPair membership{sn[r], sp[r]};
      EVIDENT_RETURN_NOT_OK(membership.Validate());
      if (!membership.HasPositiveSupport()) {
        return Status::ParseError(
            "CWA_ER violation in relation '" + rel_name + "' row " +
            std::to_string(r) + ": stored tuples must have sn > 0");
      }
      store.AppendMembership(membership);
    }

    // Key arena: must reproduce the canonical encodings of the key value
    // columns exactly, with unique keys — the lazily-built probe index
    // of the adopted relation assumes both.
    EVIDENT_ASSIGN_OR_RETURN(uint64_t arena_size, in.U64("key arena size"));
    const char* arena;
    EVIDENT_RETURN_NOT_OK(
        in.Take(static_cast<size_t>(arena_size), "key arena", &arena));
    std::vector<uint32_t> key_offsets(rows + 1);
    for (size_t r = 0; r < rows + 1; ++r) {
      EVIDENT_ASSIGN_OR_RETURN(key_offsets[r], in.U32("key offset"));
    }
    if (key_offsets[0] != 0 || key_offsets[rows] != arena_size) {
      return Status::ParseError("relation '" + rel_name +
                                "': malformed key arena offsets");
    }
    std::unordered_set<std::string_view> seen;
    seen.reserve(rows);
    std::string encoded;
    for (size_t r = 0; r < rows; ++r) {
      if (key_offsets[r + 1] < key_offsets[r]) {
        return Status::ParseError("relation '" + rel_name +
                                  "': malformed key arena offsets");
      }
      const std::string_view stored(arena + key_offsets[r],
                                    key_offsets[r + 1] - key_offsets[r]);
      store.EncodeKeyOfRow(r, &encoded);
      if (stored != encoded) {
        return Status::ParseError(
            "relation '" + rel_name + "' row " + std::to_string(r) +
            ": key arena disagrees with the key value columns");
      }
      if (!seen.insert(stored).second) {
        return Status::ParseError("duplicate key in relation '" + rel_name +
                                  "' row " + std::to_string(r));
      }
    }

    stores.push_back(std::move(store));
  }

  if (in.remaining() != 0) {
    // The only thing allowed after the last relation is the statistics
    // footer; anything else is corruption.
    const char* magic;
    EVIDENT_RETURN_NOT_OK(in.Take(8, "statistics footer magic", &magic));
    if (std::string_view(magic, 8) != kStatisticsFooterMagic) {
      return Status::ParseError("trailing bytes after the last relation");
    }
    for (ColumnStore& store : stores) {
      TableStatistics stats;
      EVIDENT_RETURN_NOT_OK(ReadStatisticsBody(
          in, "statistics footer for relation '" + store.name() + "'",
          store.rows(), store.schema()->size(), &stats));
      store.AdoptStatistics(std::move(stats));
    }
    if (in.remaining() != 0) {
      return Status::ParseError("trailing bytes after the statistics footer");
    }
  }

  for (ColumnStore& store : stores) {
    EVIDENT_RETURN_NOT_OK(catalog.RegisterRelation(
        ExtendedRelation::AdoptColumns(std::move(store))));
  }
  return catalog;
}

Result<Catalog> ReadErelColumnImage(const std::string& data,
                                    const std::string& source) {
  // Checksum trailer sniff: verified and stripped before any parsing, so
  // a bit-rotted file fails the integrity check instead of feeding the
  // parser damaged sections.
  size_t limit = data.size();
  bool checksum_ok = true;
  if (limit >= kChecksumTrailerSize &&
      data.compare(limit - kChecksumTrailerSize, 8, kChecksumTrailerMagic) ==
          0) {
    uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
      stored |= static_cast<uint32_t>(
                    static_cast<uint8_t>(data[limit - 4 + i]))
                << (8 * i);
    }
    limit -= kChecksumTrailerSize;
    checksum_ok = stored == Crc32(data.data(), limit);
  }
  ByteReader in(data.data(), limit, source);
  Result<Catalog> result =
      ReadErelColumnImageBody(in, data, limit, checksum_ok);
  if (!result.ok()) return in.Annotate(result.status());
  return result;
}

}  // namespace

std::string WriteErelColumnImage(const Catalog& catalog,
                                 bool include_statistics,
                                 bool include_checksum) {
  // One snapshot for both the relation bodies and the statistics footer:
  // a mid-serialization republish must not produce a torn image.
  const std::shared_ptr<const CatalogSnapshot> snapshot = catalog.Snapshot();
  std::string out;
  out.append(kColumnImageMagic, 6);
  out.append(kColumnImageVersion, 2);

  const std::vector<std::string> domain_names = snapshot->DomainNames();
  std::unordered_map<std::string, uint32_t> domain_index;
  PutU32(&out, static_cast<uint32_t>(domain_names.size()));
  for (const std::string& name : domain_names) {
    domain_index.emplace(name, static_cast<uint32_t>(domain_index.size()));
    const DomainPtr domain = snapshot->GetDomain(name).value();
    PutStr(&out, name);
    PutU32(&out, static_cast<uint32_t>(domain->size()));
    for (const Value& v : domain->values()) PutValue(&out, v);
  }

  PutU32(&out, static_cast<uint32_t>(snapshot->RelationCount()));
  for (const auto& [name, rel] : snapshot->relations()) {
    const ColumnStore& store = rel->columns();
    const SchemaPtr& schema = rel->schema();
    PutStr(&out, name);
    PutU32(&out, static_cast<uint32_t>(schema->size()));
    for (const AttributeDef& attr : schema->attributes()) {
      PutStr(&out, attr.name);
      PutU8(&out, static_cast<uint8_t>(attr.kind));
      PutU32(&out, attr.domain != nullptr
                       ? domain_index.at(attr.domain->name())
                       : kNoDomain);
    }
    const size_t rows = store.rows();
    PutU64(&out, rows);
    for (size_t a = 0; a < schema->size(); ++a) {
      PutU8(&out, static_cast<uint8_t>(store.kind(a)));
      switch (store.kind(a)) {
        case ColumnStore::ColumnKind::kValue: {
          for (const Value& v : store.value_column(a).values) {
            PutValue(&out, v);
          }
          break;
        }
        case ColumnStore::ColumnKind::kEvidence: {
          const ColumnStore::EvidenceColumn& col = store.evidence_column(a);
          PutU64(&out, col.words.size());
          for (uint64_t w : col.words) PutU64(&out, w);
          for (double m : col.masses) PutF64(&out, m);
          for (uint32_t o : col.offsets) PutU32(&out, o);
          break;
        }
        case ColumnStore::ColumnKind::kBoxed: {
          for (const EvidenceSet& es : store.boxed_column(a).sets) {
            const MassFunction::FocalVector& focals = es.mass().focals();
            PutU32(&out, static_cast<uint32_t>(focals.size()));
            for (const auto& [set, mass] : focals) {
              const std::vector<size_t> indices = set.Indices();
              PutU32(&out, static_cast<uint32_t>(indices.size()));
              for (size_t i : indices) {
                PutU32(&out, static_cast<uint32_t>(i));
              }
              PutF64(&out, mass);
            }
          }
          break;
        }
      }
    }
    for (double v : store.sn()) PutF64(&out, v);
    for (double v : store.sp()) PutF64(&out, v);

    std::string arena;
    std::vector<uint32_t> key_offsets;
    key_offsets.reserve(rows + 1);
    key_offsets.push_back(0);
    std::string encoded;
    for (size_t r = 0; r < rows; ++r) {
      store.EncodeKeyOfRow(r, &encoded);
      arena += encoded;
      key_offsets.push_back(static_cast<uint32_t>(arena.size()));
    }
    PutU64(&out, arena.size());
    out += arena;
    for (uint32_t o : key_offsets) PutU32(&out, o);
  }

  if (include_statistics) {
    out.append(kStatisticsFooterMagic, 8);
    for (const auto& [name, rel] : snapshot->relations()) {
      const TableStatistics& stats = rel->columns().statistics();
      PutU64(&out, stats.row_count);
      PutU32(&out, static_cast<uint32_t>(stats.attributes.size()));
      for (const TableStatistics::Attribute& attr : stats.attributes) {
        PutU64(&out, attr.distinct);
        PutU8(&out, attr.exact ? 1 : 0);
      }
      for (uint64_t count : stats.sn_histogram) PutU64(&out, count);
      for (uint64_t count : stats.sp_histogram) PutU64(&out, count);
    }
  }
  if (include_checksum) {
    const uint32_t crc = Crc32(out.data(), out.size());
    out.append(kChecksumTrailerMagic, 8);
    PutU32(&out, crc);
  }
  return out;
}

Result<Catalog> ReadErel(const std::string& text,
                         const std::string& source) {
  if (text.compare(0, 6, kColumnImageMagic) == 0) {
    if (text.size() >= 8 &&
        text.compare(6, 2, kColumnImageVersionV3) == 0) {
      // Owned v3 parse: columns are decoded and every partition verified
      // eagerly, so the catalog outlives `text`.
      return ReadErelColumnImageV3(text.data(), text.size(), source,
                                   /*mapping=*/nullptr);
    }
    return ReadErelColumnImage(text, source);
  }
  Catalog catalog;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;

  // Relation being parsed (between "relation" and "end").
  bool in_relation = false;
  std::string rel_name;
  std::vector<AttributeDef> attrs;
  SchemaPtr schema;
  ExtendedRelation relation;

  auto fail = [&](const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + msg);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    if (StartsWith(trimmed, "domain ")) {
      if (in_relation) return fail("'domain' inside relation block");
      const auto colon = trimmed.find(':');
      if (colon == std::string::npos) return fail("missing ':' in domain");
      const std::string name = Trim(trimmed.substr(7, colon - 7));
      std::vector<Value> values;
      for (const std::string& v : Split(trimmed.substr(colon + 1), ',')) {
        values.push_back(Value::Parse(Trim(v)));
      }
      auto domain = Domain::Make(name, std::move(values));
      if (!domain.ok()) return fail(domain.status().message());
      EVIDENT_RETURN_NOT_OK(catalog.RegisterDomain(*domain));
      continue;
    }

    if (StartsWith(trimmed, "relation ")) {
      if (in_relation) return fail("nested relation block");
      in_relation = true;
      rel_name = Trim(trimmed.substr(9));
      if (rel_name.empty()) return fail("relation needs a name");
      attrs.clear();
      schema = nullptr;
      continue;
    }

    if (StartsWith(trimmed, "attr ")) {
      if (!in_relation) return fail("'attr' outside relation block");
      if (schema != nullptr) return fail("'attr' after first 'row'");
      const auto parts = Split(trimmed.substr(5), ' ');
      std::vector<std::string> tokens;
      for (const auto& p : parts) {
        if (!Trim(p).empty()) tokens.push_back(Trim(p));
      }
      if (tokens.size() < 2) return fail("attr needs a name and a kind");
      const std::string& attr_name = tokens[0];
      const std::string& kind = tokens[1];
      if (kind == "key") {
        attrs.push_back(AttributeDef::Key(attr_name));
      } else if (kind == "definite") {
        attrs.push_back(AttributeDef::Definite(attr_name));
      } else if (kind == "uncertain") {
        if (tokens.size() != 3) return fail("uncertain attr needs a domain");
        auto domain = catalog.GetDomain(tokens[2]);
        if (!domain.ok()) return fail(domain.status().message());
        attrs.push_back(AttributeDef::Uncertain(attr_name, *domain));
      } else {
        return fail("unknown attribute kind '" + kind + "'");
      }
      continue;
    }

    if (StartsWith(trimmed, "row ") || trimmed == "row") {
      if (!in_relation) return fail("'row' outside relation block");
      if (schema == nullptr) {
        auto made = RelationSchema::Make(attrs);
        if (!made.ok()) return fail(made.status().message());
        schema = *made;
        relation = ExtendedRelation(rel_name, schema);
      }
      const auto fields = SplitTopLevel(trimmed.substr(4), '|');
      if (fields.size() != schema->size() + 1) {
        return fail("row has " + std::to_string(fields.size()) +
                    " fields, expected " + std::to_string(schema->size() + 1));
      }
      ExtendedTuple t;
      t.cells.resize(schema->size());
      for (size_t c = 0; c < schema->size(); ++c) {
        const std::string field = Trim(fields[c]);
        const AttributeDef& attr = schema->attribute(c);
        if (attr.is_uncertain()) {
          auto es = ParseEvidenceLiteral(attr.domain, field);
          if (!es.ok()) return fail(es.status().message());
          t.cells[c] = std::move(es).value();
        } else {
          t.cells[c] = Value::Parse(field);
        }
      }
      auto membership = ParseSupportPair(Trim(fields.back()));
      if (!membership.ok()) return fail(membership.status().message());
      t.membership = *membership;
      EVIDENT_RETURN_NOT_OK(relation.Insert(std::move(t)));
      continue;
    }

    if (trimmed == "end") {
      if (!in_relation) return fail("'end' outside relation block");
      if (schema == nullptr) {
        // Relation with no rows: build the schema now.
        auto made = RelationSchema::Make(attrs);
        if (!made.ok()) return fail(made.status().message());
        schema = *made;
        relation = ExtendedRelation(rel_name, schema);
      }
      EVIDENT_RETURN_NOT_OK(catalog.RegisterRelation(std::move(relation)));
      in_relation = false;
      schema = nullptr;
      continue;
    }

    return fail("unrecognized line '" + trimmed + "'");
  }
  if (in_relation) {
    return Status::ParseError("unterminated relation block '" + rel_name +
                              "'");
  }
  return catalog;
}

namespace {

/// Chunk size for the file write/read loops: large enough that syscall
/// count is negligible, small enough that a short write retries promptly.
constexpr size_t kFileChunkBytes = 256 * 1024;

/// One chunked write with EINTR retry and the storage fault-injection
/// hooks threaded through; `data` must be fully written on OK.
Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const size_t chunk = std::min(data.size() - off, kFileChunkBytes);
    ssize_t n;
    if (fault::ShouldFail(fault::Site::kWrite)) {
      n = -1;
      errno = EIO;
    } else if (fault::ShouldFail(fault::Site::kEintr)) {
      n = -1;
      errno = EINTR;
    } else if (fault::ShouldFail(fault::Site::kShortWrite)) {
      // A short write is not an error — the loop must pick up the rest.
      n = ::write(fd, data.data() + off, chunk > 1 ? chunk / 2 : chunk);
    } else {
      n = ::write(fd, data.data() + off, chunk);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecError("write error");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

namespace {

/// Crash-safe commit of a serialized catalog: write path.tmp, fsync,
/// then atomically rename over path. Readers of `path` see the old file
/// or the new file, never a torn one; any failure removes the temporary
/// and leaves `path` alone.
Status CommitErelBlob(const std::string& blob, const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  auto fail = [&](const char* step, bool fd_open) {
    if (fd_open) ::close(fd);
    ::unlink(tmp.c_str());
    return Status::ExecError("failed writing '" + path + "': " +
                             std::string(step));
  };
  const Status written = WriteAll(fd, blob);
  if (!written.ok()) return fail(written.message().c_str(), true);
  if (fault::ShouldFail(fault::Site::kFlush) || ::fsync(fd) != 0) {
    return fail("fsync error", true);
  }
  if (::close(fd) != 0) return fail("close error", false);
  if (fault::ShouldFail(fault::Site::kRename) ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail("rename error", false);
  }
  return Status::OK();
}

/// A mapped catalog defers its per-partition semantic checks; saving
/// reads every byte of every relation, so drive them all first — a save
/// of a corrupt mapped image must fail with the load-style diagnosis,
/// not silently persist garbage.
Status VerifyBeforeSave(const Catalog& catalog) {
  for (const auto& [name, rel] : catalog.Snapshot()->relations()) {
    if (!rel->columnar_mode()) continue;
    EVIDENT_RETURN_NOT_OK(rel->columns().EnsureAllVerified());
  }
  return Status::OK();
}

Status SaveErelFileImpl(const Catalog& catalog, const std::string& path,
                        ErelFormat format) {
  EVIDENT_RETURN_NOT_OK(VerifyBeforeSave(catalog));
  bool column_image = format == ErelFormat::kColumnImage;
  if (format == ErelFormat::kAuto) {
    // Saving must not force row materialization: any columnar-mode
    // relation routes the whole catalog through the column image.
    for (const auto& [name, rel] : catalog.Snapshot()->relations()) {
      if (rel->columnar_mode()) {
        column_image = true;
        break;
      }
    }
  }
  // Serialize fully in memory first: a failure here leaves no file-system
  // trace at all, and the write loop never blocks on serialization.
  const std::string blob =
      column_image ? WriteErelColumnImage(catalog,
                                          /*include_statistics=*/true,
                                          /*include_checksum=*/true)
                   : WriteErel(catalog);
  return CommitErelBlob(blob, path);
}

}  // namespace

Status SaveErelFile(const Catalog& catalog, const std::string& path,
                    ErelFormat format) {
  // The only allocations between opening and renaming the temporary are
  // error-message construction on a failure path (after the injector has
  // disarmed), so catching here can leak neither a descriptor nor the
  // temporary file.
  try {
    return SaveErelFileImpl(catalog, path, format);
  } catch (const std::bad_alloc&) {
    return Status::ExecError("out of memory saving '" + path + "'");
  }
}

Status SaveErelFile(const Catalog& catalog, const std::string& path,
                    const PartitionSpec& partitioning,
                    bool include_statistics) {
  try {
    EVIDENT_RETURN_NOT_OK(VerifyBeforeSave(catalog));
    return CommitErelBlob(
        WriteErelColumnImageV3(catalog, partitioning, include_statistics),
        path);
  } catch (const std::bad_alloc&) {
    return Status::ExecError("out of memory saving '" + path + "'");
  }
}

namespace {

/// Fills the caller's LoadInfo from a loaded catalog: relation count and
/// total partition count (a relation without partition metadata — any
/// v1/v2 load — counts as one).
void FillLoadInfo(LoadInfo* info, const Catalog& catalog, bool mapped,
                  const char* format) {
  if (info == nullptr) return;
  info->mapped = mapped;
  info->format = format;
  info->relations = 0;
  info->partitions = 0;
  for (const auto& [name, rel] : catalog.Snapshot()->relations()) {
    ++info->relations;
    const size_t parts = rel->columns().partitions().size();
    info->partitions += parts == 0 ? 1 : parts;
  }
}

Result<Catalog> LoadErelFileImpl(const std::string& path,
                                 LoadOptions::Map map, LoadInfo* info) {
  if (map != LoadOptions::Map::kNever) {
    Result<std::shared_ptr<MappedFile>> mapped = MappedFile::Open(path);
    if (mapped.ok()) {
      const std::shared_ptr<MappedFile>& m = *mapped;
      if (m->size() >= 8 &&
          std::memcmp(m->data(), "EVCIMG03", 8) == 0) {
        Result<Catalog> catalog =
            ReadErelColumnImageV3(m->data(), m->size(), path, m);
        if (catalog.ok()) {
          FillLoadInfo(info, *catalog, /*mapped=*/true, "column-image-v3");
        }
        return catalog;
      }
      if (map == LoadOptions::Map::kAlways) {
        return Status::ExecError("cannot map '" + path +
                                 "': not an EVCIMG03 column image");
      }
      // v1/v2 file: the mapping is useless (those layouts carry no
      // alignment padding) — fall through to the copied path.
    } else if (map == LoadOptions::Map::kAlways) {
      return mapped.status();
    }
    // kAuto maps best-effort: an unmappable file (missing, not regular,
    // empty) falls back to the read loop, which reports its own error.
  }

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string data;
  try {
    std::vector<char> buf(kFileChunkBytes);
    for (;;) {
      ssize_t n;
      if (fault::ShouldFail(fault::Site::kRead)) {
        n = -1;
        errno = EIO;
      } else if (fault::ShouldFail(fault::Site::kEintr)) {
        n = -1;
        errno = EINTR;
      } else if (fault::ShouldFail(fault::Site::kShortRead)) {
        n = 0;  // spurious EOF: the parser sees a truncated image
      } else {
        n = ::read(fd, buf.data(), buf.size());
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::ExecError("failed reading '" + path + "'");
      }
      if (n == 0) break;
      data.append(buf.data(), static_cast<size_t>(n));
    }
  } catch (const std::bad_alloc&) {
    ::close(fd);
    return Status::ExecError("out of memory loading '" + path + "'");
  }
  ::close(fd);
  Result<Catalog> catalog = ReadErel(data, path);
  if (catalog.ok() && info != nullptr) {
    const char* format = "text";
    if (data.compare(0, 6, kColumnImageMagic) == 0) {
      format = data.compare(6, 2, kColumnImageVersionV3) == 0
                   ? "column-image-v3"
                   : "column-image-v2";
    }
    FillLoadInfo(info, *catalog, /*mapped=*/false, format);
  }
  return catalog;
}

}  // namespace

Result<Catalog> LoadErelFile(const std::string& path) {
  return LoadErelFile(path, LoadOptions{}, nullptr);
}

Result<Catalog> LoadErelFile(const std::string& path,
                             const LoadOptions& options, LoadInfo* info) {
  if (info != nullptr) *info = LoadInfo{};
  LoadOptions::Map map = options.map;
  if (map == LoadOptions::Map::kAuto) {
    const char* env = std::getenv("EVIDENT_MMAP");
    if (env != nullptr && std::string_view(env) == "0") {
      map = LoadOptions::Map::kNever;
    }
  }
  // One guard over the whole load: every allocation (mapping bookkeeping,
  // error-message strings, the parse itself) fails as a clean Status. The
  // read loop keeps its own inner guard — it must close the fd first.
  try {
    return LoadErelFileImpl(path, map, info);
  } catch (const std::bad_alloc&) {
    return Status::ExecError("out of memory loading '" + path + "'");
  }
}

}  // namespace evident
