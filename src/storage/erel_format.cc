#include "storage/erel_format.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "text/evidence_literal.h"

namespace evident {

namespace {

/// Quotes a definite value if needed so Value::Parse round-trips it:
/// strings that would parse as numbers get quoted.
std::string WriteDefiniteValue(const Value& v) {
  if (!v.is_string()) return v.ToString();
  const Value reparsed = Value::Parse(v.string_value());
  if (reparsed.is_string()) return v.string_value();
  return "\"" + v.string_value() + "\"";
}

}  // namespace

std::string WriteErel(const Catalog& catalog, int mass_decimals) {
  std::ostringstream os;
  os << "# evident .erel catalog\n";
  for (const std::string& name : catalog.DomainNames()) {
    const DomainPtr domain = catalog.GetDomain(name).value();
    os << "domain " << name << ":";
    for (size_t i = 0; i < domain->size(); ++i) {
      os << (i ? ", " : " ") << domain->value(i);
    }
    os << "\n";
  }
  for (const std::string& name : catalog.RelationNames()) {
    const ExtendedRelation* rel = catalog.GetRelation(name).value();
    os << "\nrelation " << name << "\n";
    for (const AttributeDef& attr : rel->schema()->attributes()) {
      os << "attr " << attr.name << " " << AttributeKindToString(attr.kind);
      if (attr.is_uncertain()) os << " " << attr.domain->name();
      os << "\n";
    }
    for (const ExtendedTuple& t : rel->rows()) {
      os << "row ";
      for (size_t c = 0; c < t.cells.size(); ++c) {
        if (c) os << " | ";
        if (CellIsValue(t.cells[c])) {
          os << WriteDefiniteValue(std::get<Value>(t.cells[c]));
        } else {
          os << std::get<EvidenceSet>(t.cells[c]).ToString(mass_decimals);
        }
      }
      os << " | " << t.membership.ToString(mass_decimals) << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

Result<Catalog> ReadErel(const std::string& text) {
  Catalog catalog;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;

  // Relation being parsed (between "relation" and "end").
  bool in_relation = false;
  std::string rel_name;
  std::vector<AttributeDef> attrs;
  SchemaPtr schema;
  ExtendedRelation relation;

  auto fail = [&](const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + msg);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    if (StartsWith(trimmed, "domain ")) {
      if (in_relation) return fail("'domain' inside relation block");
      const auto colon = trimmed.find(':');
      if (colon == std::string::npos) return fail("missing ':' in domain");
      const std::string name = Trim(trimmed.substr(7, colon - 7));
      std::vector<Value> values;
      for (const std::string& v : Split(trimmed.substr(colon + 1), ',')) {
        values.push_back(Value::Parse(Trim(v)));
      }
      auto domain = Domain::Make(name, std::move(values));
      if (!domain.ok()) return fail(domain.status().message());
      EVIDENT_RETURN_NOT_OK(catalog.RegisterDomain(*domain));
      continue;
    }

    if (StartsWith(trimmed, "relation ")) {
      if (in_relation) return fail("nested relation block");
      in_relation = true;
      rel_name = Trim(trimmed.substr(9));
      if (rel_name.empty()) return fail("relation needs a name");
      attrs.clear();
      schema = nullptr;
      continue;
    }

    if (StartsWith(trimmed, "attr ")) {
      if (!in_relation) return fail("'attr' outside relation block");
      if (schema != nullptr) return fail("'attr' after first 'row'");
      const auto parts = Split(trimmed.substr(5), ' ');
      std::vector<std::string> tokens;
      for (const auto& p : parts) {
        if (!Trim(p).empty()) tokens.push_back(Trim(p));
      }
      if (tokens.size() < 2) return fail("attr needs a name and a kind");
      const std::string& attr_name = tokens[0];
      const std::string& kind = tokens[1];
      if (kind == "key") {
        attrs.push_back(AttributeDef::Key(attr_name));
      } else if (kind == "definite") {
        attrs.push_back(AttributeDef::Definite(attr_name));
      } else if (kind == "uncertain") {
        if (tokens.size() != 3) return fail("uncertain attr needs a domain");
        auto domain = catalog.GetDomain(tokens[2]);
        if (!domain.ok()) return fail(domain.status().message());
        attrs.push_back(AttributeDef::Uncertain(attr_name, *domain));
      } else {
        return fail("unknown attribute kind '" + kind + "'");
      }
      continue;
    }

    if (StartsWith(trimmed, "row ") || trimmed == "row") {
      if (!in_relation) return fail("'row' outside relation block");
      if (schema == nullptr) {
        auto made = RelationSchema::Make(attrs);
        if (!made.ok()) return fail(made.status().message());
        schema = *made;
        relation = ExtendedRelation(rel_name, schema);
      }
      const auto fields = SplitTopLevel(trimmed.substr(4), '|');
      if (fields.size() != schema->size() + 1) {
        return fail("row has " + std::to_string(fields.size()) +
                    " fields, expected " + std::to_string(schema->size() + 1));
      }
      ExtendedTuple t;
      t.cells.resize(schema->size());
      for (size_t c = 0; c < schema->size(); ++c) {
        const std::string field = Trim(fields[c]);
        const AttributeDef& attr = schema->attribute(c);
        if (attr.is_uncertain()) {
          auto es = ParseEvidenceLiteral(attr.domain, field);
          if (!es.ok()) return fail(es.status().message());
          t.cells[c] = std::move(es).value();
        } else {
          t.cells[c] = Value::Parse(field);
        }
      }
      auto membership = ParseSupportPair(Trim(fields.back()));
      if (!membership.ok()) return fail(membership.status().message());
      t.membership = *membership;
      EVIDENT_RETURN_NOT_OK(relation.Insert(std::move(t)));
      continue;
    }

    if (trimmed == "end") {
      if (!in_relation) return fail("'end' outside relation block");
      if (schema == nullptr) {
        // Relation with no rows: build the schema now.
        auto made = RelationSchema::Make(attrs);
        if (!made.ok()) return fail(made.status().message());
        schema = *made;
        relation = ExtendedRelation(rel_name, schema);
      }
      EVIDENT_RETURN_NOT_OK(catalog.RegisterRelation(std::move(relation)));
      in_relation = false;
      schema = nullptr;
      continue;
    }

    return fail("unrecognized line '" + trimmed + "'");
  }
  if (in_relation) {
    return Status::ParseError("unterminated relation block '" + rel_name +
                              "'");
  }
  return catalog;
}

Status SaveErelFile(const Catalog& catalog, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << WriteErel(catalog);
  out.close();
  if (!out) return Status::Internal("failed writing '" + path + "'");
  return Status::OK();
}

Result<Catalog> LoadErelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadErel(buffer.str());
}

}  // namespace evident
