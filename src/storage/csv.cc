#include "storage/csv.h"

#include <fstream>
#include <sstream>

namespace evident {

namespace {

/// Splits one CSV record, honoring double quotes.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char separator, size_t line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": quote in the middle of a field");
      }
      quoted = true;
    } else if (c == separator) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (quoted) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": unterminated quote");
  }
  fields.push_back(std::move(current));
  return fields;
}

bool NeedsQuoting(const std::string& field, char separator) {
  return field.find(separator) != std::string::npos ||
         field.find('"') != std::string::npos;
}

}  // namespace

Result<RawTable> ParseCsv(const std::string& name, const std::string& text,
                          char separator) {
  RawTable table;
  table.name = name;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    EVIDENT_ASSIGN_OR_RETURN(auto fields,
                             SplitCsvLine(line, separator, line_no));
    if (table.columns.empty()) {
      table.columns = std::move(fields);
    } else {
      if (fields.size() != table.columns.size()) {
        return Status::ParseError(
            "line " + std::to_string(line_no) + ": " +
            std::to_string(fields.size()) + " fields, header has " +
            std::to_string(table.columns.size()));
      }
      table.rows.push_back(std::move(fields));
    }
  }
  if (table.columns.empty()) {
    return Status::ParseError("CSV '" + name + "' has no header");
  }
  return table;
}

Result<RawTable> LoadCsvFile(const std::string& name, const std::string& path,
                             char separator) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(name, buffer.str(), separator);
}

std::string WriteCsv(const RawTable& table, char separator) {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i) os << separator;
      if (NeedsQuoting(fields[i], separator)) {
        os << '"';
        for (char c : fields[i]) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << fields[i];
      }
    }
    os << "\n";
  };
  emit(table.columns);
  for (const auto& row : table.rows) emit(row);
  return os.str();
}

}  // namespace evident
