#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "core/fault_injection.h"

namespace evident {

namespace {

std::atomic<uint64_t> g_live_mappings{0};

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0 && fault::ShouldFail(fault::Site::kOpen)) {
    ::close(fd);
    fd = -1;
    errno = EIO;
  }
  if (fd < 0) return Status::NotFound(Errno("cannot open", path));

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::ExecError(Errno("cannot stat", path));
  }
  if (!S_ISREG(st.st_mode) || st.st_size <= 0) {
    ::close(fd);
    return Status::ExecError("cannot map '" + path +
                             "': not a regular non-empty file");
  }
  const size_t size = static_cast<size_t>(st.st_size);

  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr != MAP_FAILED && fault::ShouldFail(fault::Site::kMmap)) {
    ::munmap(addr, size);
    addr = MAP_FAILED;
    errno = ENOMEM;
  }
  if (addr == MAP_FAILED) {
    ::close(fd);
    return Status::ExecError(Errno("cannot map", path));
  }

  // The mapping holds its own reference to the pages; the fd is done.
  int close_rc = ::close(fd);
  if (close_rc == 0 && fault::ShouldFail(fault::Site::kClose)) {
    close_rc = -1;
    errno = EIO;
  }
  if (close_rc != 0) {
    ::munmap(addr, size);
    return Status::ExecError(Errno("cannot close", path));
  }

  MappedFile* file = nullptr;
  try {
    file = new MappedFile(addr, size);
  } catch (...) {
    // operator new failed before the constructor ran: the mapping is
    // still this frame's to release.
    ::munmap(addr, size);
    throw;
  }
  g_live_mappings.fetch_add(1, std::memory_order_relaxed);
  // If the control-block allocation throws, shared_ptr deletes `file`,
  // whose destructor unmaps and balances the counter.
  return std::shared_ptr<MappedFile>(file);
}

MappedFile::~MappedFile() {
  ::munmap(addr_, size_);
  g_live_mappings.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t MappedFile::live_mappings() {
  return g_live_mappings.load(std::memory_order_relaxed);
}

}  // namespace evident
