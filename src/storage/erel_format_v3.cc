// The EVCIMG03 partitioned column image: writer, structural reader and
// per-partition semantic verifier. The layout is documented bytes-exactly
// in erel_format.h.
//
// The reader splits validation in two. Everything needed for memory
// safety is checked eagerly on open — magic, counts, every chunk
// offset/size, focal-offset array, key-arena offset and index slot is
// bounds-checked, so no access through the loaded store can read out of
// bounds. The O(bytes) semantic checks (chunk CRCs, mass-function
// invariants, CWA_ER, zone containment, key-arena/index agreement) run
// per partition through one shared VerifyRelationPartition: eagerly (in
// partition order) for a copied load, lazily on first touch for a mapped
// load — so both modes report byte-identical messages for the same
// corruption, and a mapped open stays O(partitions), not O(bytes).

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/column_store.h"
#include "core/extended_relation.h"
#include "core/key_index.h"
#include "storage/erel_format.h"
#include "storage/erel_internal.h"
#include "storage/erel_v3.h"
#include "storage/mmap_file.h"

namespace evident {

// Numeric arrays are stored as raw host-order bytes so a mapped file can
// lend them to ColumnSpans; the format is defined as little-endian.
static_assert(std::endian::native == std::endian::little,
              "EVCIMG03 images are little-endian");

namespace {

using erel_detail::ByteReader;
using erel_detail::Crc32;
using erel_detail::kStatisticsFooterMagic;
using erel_detail::PutF64;
using erel_detail::PutStr;
using erel_detail::PutU32;
using erel_detail::PutU64;
using erel_detail::PutU8;
using erel_detail::PutValue;
using erel_detail::ReadStatisticsBody;
using erel_detail::ValidateEvidenceRows;
using erel_detail::WriteStatisticsBody;

constexpr char kV3Magic[] = "EVCIMG03";
constexpr uint32_t kNoDomain = std::numeric_limits<uint32_t>::max();

// ---------------------------------------------------------------------------
// Writer.

/// Appends zero bytes until `out` ends on an 8-byte boundary. Valid for
/// whole-file buffers and for chunk buffers alike: chunks are spliced in
/// at 8-aligned file offsets, so chunk-local and file alignment agree.
void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

/// The zone map of one partition, gathered while its chunk serializes.
struct ZoneEntry {
  double sn_min = 1.0, sn_max = 0.0;
  double sp_min = 1.0, sp_max = 0.0;
  std::vector<ColumnStore::ValueZone> values;
};

/// Partition assignment: the list of source-store row ids per partition,
/// in the order they are written (partition-major global row order).
std::vector<std::vector<uint32_t>> AssignPartitions(
    const ColumnStore& store, PartitionSpec::Scheme scheme, uint32_t count) {
  const size_t rows = store.rows();
  std::vector<std::vector<uint32_t>> groups;
  if (scheme == PartitionSpec::Scheme::kNone || count <= 1 || rows == 0) {
    groups.resize(1);
    groups[0].resize(rows);
    std::iota(groups[0].begin(), groups[0].end(), 0u);
    return groups;
  }
  groups.resize(count);
  if (scheme == PartitionSpec::Scheme::kHash) {
    const ColumnStore::EncodedKeys& keys = store.encoded_keys();
    for (size_t r = 0; r < rows; ++r) {
      groups[StableKeyHash(keys.key(r)) % count].push_back(
          static_cast<uint32_t>(r));
    }
    return groups;
  }
  // Key range: order rows by their key-column values (a total order —
  // keys are unique), then cut into equal-count ranges so the zone maps
  // carry disjoint key intervals.
  std::vector<uint32_t> order(rows);
  std::iota(order.begin(), order.end(), 0u);
  const std::vector<size_t>& key_cols = store.schema()->key_indices();
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t c : key_cols) {
                       const std::vector<Value>& values =
                           store.value_column(c).values;
                       if (values[a] < values[b]) return true;
                       if (values[b] < values[a]) return false;
                     }
                     return false;
                   });
  for (size_t i = 0; i < rows; ++i) {
    groups[i * count / rows].push_back(order[i]);
  }
  return groups;
}

/// Serializes one partition's sub-store as a chunk (columns, sn/sp,
/// statistics block, trailing pad) and fills its zone map.
void AppendChunk(const ColumnStore& sub, std::string* chunk,
                 ZoneEntry* zone) {
  const SchemaPtr& schema = sub.schema();
  const size_t rows = sub.rows();
  zone->values.resize(schema->size());
  for (size_t a = 0; a < schema->size(); ++a) {
    switch (sub.kind(a)) {
      case ColumnStore::ColumnKind::kValue: {
        const std::vector<Value>& values = sub.value_column(a).values;
        bool all_int = rows > 0, all_real = rows > 0;
        for (const Value& v : values) {
          all_int = all_int && v.kind() == Value::Kind::kInt;
          all_real = all_real && v.kind() == Value::Kind::kReal;
        }
        if (all_int) {
          PutU8(chunk, 1);
          PadTo8(chunk);
          for (const Value& v : values) {
            PutU64(chunk, static_cast<uint64_t>(v.int_value()));
          }
        } else if (all_real) {
          PutU8(chunk, 2);
          PadTo8(chunk);
          for (const Value& v : values) PutF64(chunk, v.real_value());
        } else {
          PutU8(chunk, 0);
          for (const Value& v : values) PutValue(chunk, v);
        }
        if (rows > 0) {
          ColumnStore::ValueZone& vz = (*zone).values[a];
          vz.has = true;
          vz.min = values[0];
          vz.max = values[0];
          for (const Value& v : values) {
            if (v < vz.min) vz.min = v;
            if (vz.max < v) vz.max = v;
          }
        }
        break;
      }
      case ColumnStore::ColumnKind::kEvidence: {
        const ColumnStore::EvidenceColumn& col = sub.evidence_column(a);
        PutU8(chunk, 3);
        PutU64(chunk, col.words.size());
        PadTo8(chunk);
        for (uint64_t w : col.words) PutU64(chunk, w);
        for (double m : col.masses) PutF64(chunk, m);
        for (uint32_t o : col.offsets) PutU32(chunk, o);
        break;
      }
      case ColumnStore::ColumnKind::kBoxed: {
        PutU8(chunk, 4);
        for (const EvidenceSet& es : sub.boxed_column(a).sets) {
          const MassFunction::FocalVector& focals = es.mass().focals();
          PutU32(chunk, static_cast<uint32_t>(focals.size()));
          for (const auto& [set, mass] : focals) {
            const std::vector<size_t> indices = set.Indices();
            PutU32(chunk, static_cast<uint32_t>(indices.size()));
            for (size_t i : indices) PutU32(chunk, static_cast<uint32_t>(i));
            PutF64(chunk, mass);
          }
        }
        break;
      }
    }
  }
  PadTo8(chunk);
  for (double v : sub.sn()) PutF64(chunk, v);
  for (double v : sub.sp()) PutF64(chunk, v);
  for (size_t r = 0; r < rows; ++r) {
    zone->sn_min = std::min(zone->sn_min, sub.sn()[r]);
    zone->sn_max = std::max(zone->sn_max, sub.sn()[r]);
    zone->sp_min = std::min(zone->sp_min, sub.sp()[r]);
    zone->sp_max = std::max(zone->sp_max, sub.sp()[r]);
  }
  chunk->append(kStatisticsFooterMagic, 8);
  WriteStatisticsBody(chunk, sub.statistics());
  PadTo8(chunk);
}

}  // namespace

std::string WriteErelColumnImageV3(const Catalog& catalog,
                                   const PartitionSpec& partitioning,
                                   bool include_statistics) {
  // One snapshot for the whole image, as in the v2 writer.
  const std::shared_ptr<const CatalogSnapshot> snapshot = catalog.Snapshot();
  std::string out;
  out.append(kV3Magic, 8);

  const std::vector<std::string> domain_names = snapshot->DomainNames();
  std::unordered_map<std::string, uint32_t> domain_index;
  PutU32(&out, static_cast<uint32_t>(domain_names.size()));
  for (const std::string& name : domain_names) {
    domain_index.emplace(name, static_cast<uint32_t>(domain_index.size()));
    const DomainPtr domain = snapshot->GetDomain(name).value();
    PutStr(&out, name);
    PutU32(&out, static_cast<uint32_t>(domain->size()));
    for (const Value& v : domain->values()) PutValue(&out, v);
  }

  PutU32(&out, static_cast<uint32_t>(snapshot->RelationCount()));
  for (const auto& [name, rel] : snapshot->relations()) {
    const ColumnStore& store = rel->columns();
    const SchemaPtr& schema = rel->schema();
    PutStr(&out, name);
    PutU32(&out, static_cast<uint32_t>(schema->size()));
    for (const AttributeDef& attr : schema->attributes()) {
      PutStr(&out, attr.name);
      PutU8(&out, static_cast<uint8_t>(attr.kind));
      PutU32(&out, attr.domain != nullptr
                       ? domain_index.at(attr.domain->name())
                       : kNoDomain);
    }
    const size_t rows = store.rows();
    PutU64(&out, rows);

    const std::vector<std::vector<uint32_t>> groups =
        AssignPartitions(store, partitioning.scheme,
                         std::max<uint32_t>(1, partitioning.partitions));
    // A single partition is always stored as a monolithic image,
    // whatever scheme was requested (empty relation, partitions == 1).
    PutU8(&out, groups.size() == 1
                    ? 0
                    : static_cast<uint8_t>(partitioning.scheme));
    PutU32(&out, static_cast<uint32_t>(groups.size()));

    // Build every chunk (and its zone map) first: the manifest that
    // precedes the chunk area carries their offsets, sizes and CRCs.
    std::vector<size_t> identity(schema->size());
    std::iota(identity.begin(), identity.end(), size_t{0});
    std::vector<std::string> chunks(groups.size());
    std::vector<ZoneEntry> zones(groups.size());
    for (size_t p = 0; p < groups.size(); ++p) {
      std::vector<SupportPair> memberships;
      memberships.reserve(groups[p].size());
      for (uint32_t r : groups[p]) memberships.push_back(store.membership(r));
      const ColumnStore sub = ColumnStore::SpliceRows(
          store, schema, store.name(), identity, groups[p], memberships);
      AppendChunk(sub, &chunks[p], &zones[p]);
    }

    uint64_t offset = 0;
    for (size_t p = 0; p < groups.size(); ++p) {
      PutU64(&out, groups[p].size());
      PutU64(&out, offset);
      PutU64(&out, chunks[p].size());
      PutU32(&out, Crc32(chunks[p].data(), chunks[p].size()));
      offset += chunks[p].size();
      PutF64(&out, zones[p].sn_min);
      PutF64(&out, zones[p].sn_max);
      PutF64(&out, zones[p].sp_min);
      PutF64(&out, zones[p].sp_max);
      for (const ColumnStore::ValueZone& vz : zones[p].values) {
        PutU8(&out, vz.has ? 1 : 0);
        if (vz.has) {
          PutValue(&out, vz.min);
          PutValue(&out, vz.max);
        }
      }
    }
    PadTo8(&out);
    for (const std::string& chunk : chunks) out += chunk;

    // Trailer: keys, the persisted index and the relation statistics,
    // all in the file's partition-major global row order.
    std::string arena;
    std::vector<uint32_t> key_offsets;
    key_offsets.reserve(rows + 1);
    key_offsets.push_back(0);
    EncodedKeyIndex index;
    index.Reserve(rows);
    std::string encoded;
    for (const std::vector<uint32_t>& group : groups) {
      for (uint32_t r : group) {
        store.EncodeKeyOfRow(r, &encoded);
        arena += encoded;
        key_offsets.push_back(static_cast<uint32_t>(arena.size()));
        index.Insert(encoded);
      }
    }
    PutU64(&out, arena.size());
    out += arena;
    for (uint32_t o : key_offsets) PutU32(&out, o);
    PutU8(&out, 1);  // has_index
    PutU64(&out, index.capacity());
    for (uint64_t h : index.hashes()) PutU64(&out, h);
    for (uint32_t s : index.slots()) PutU32(&out, s);
    PutU8(&out, include_statistics ? 1 : 0);
    if (include_statistics) {
      out.append(kStatisticsFooterMagic, 8);
      WriteStatisticsBody(&out, store.statistics());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reader.

namespace {

struct ChunkMeta {
  uint64_t rows = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

/// Everything the per-partition verifier needs, captured once per
/// relation. For a mapped load `mapping` keeps the bytes alive for as
/// long as a partition may still be verified; for a copied load the
/// verifier runs eagerly inside the read (while `base` — the caller's
/// buffer — is still valid) and is dropped before the catalog escapes.
struct VerifyContext {
  std::string source;
  std::string relation;
  std::shared_ptr<MappedFile> mapping;
  const char* base = nullptr;
  size_t chunk_area = 0;  // absolute offset of the chunk area
  std::vector<ChunkMeta> chunks;
  std::shared_ptr<const EncodedKeyIndex> index;  // null: no persisted index
};

/// The deferred half of the load: the semantic checks over one
/// partition's rows. Identical for mapped and copied loads — the first
/// error either mode reports for a given file is the same string.
Status VerifyRelationPartition(const ColumnStore& store, size_t p,
                               const VerifyContext& ctx) {
  auto wrap = [&](const std::string& msg) {
    return Status::ParseError(ctx.source + ": relation '" + ctx.relation +
                              "' partition " + std::to_string(p) + ": " + msg);
  };
  auto wrap_row = [&](size_t row, const std::string& msg) {
    return wrap("row " + std::to_string(row) + ": " + msg);
  };
  const ColumnStore::PartitionZone& zone = store.partitions()[p];
  const ChunkMeta& chunk = ctx.chunks[p];
  if (Crc32(ctx.base + ctx.chunk_area + chunk.offset,
            static_cast<size_t>(chunk.size)) != chunk.crc) {
    return wrap("chunk checksum mismatch: the file is corrupt");
  }
  const SchemaPtr& schema = store.schema();
  for (size_t a = 0; a < schema->size(); ++a) {
    if (store.kind(a) != ColumnStore::ColumnKind::kEvidence) continue;
    const ColumnStore::EvidenceColumn& col = store.evidence_column(a);
    const Status valid =
        ValidateEvidenceRows(schema->attribute(a).name, col.universe, col,
                             zone.begin_row, zone.end_row);
    if (!valid.ok()) return wrap(valid.message());
  }
  const ColumnSpan<double>& sn = store.sn();
  const ColumnSpan<double>& sp = store.sp();
  for (size_t r = zone.begin_row; r < zone.end_row; ++r) {
    const SupportPair membership{sn[r], sp[r]};
    const Status valid = membership.Validate();
    if (!valid.ok()) return wrap_row(r, valid.message());
    if (!membership.HasPositiveSupport()) {
      return wrap_row(r, "CWA_ER violation: stored tuples must have sn > 0");
    }
    if (sn[r] < zone.sn_min || sn[r] > zone.sn_max || sp[r] < zone.sp_min ||
        sp[r] > zone.sp_max) {
      return wrap_row(r, "support outside the partition zone map");
    }
  }
  for (size_t a = 0; a < schema->size(); ++a) {
    if (store.kind(a) != ColumnStore::ColumnKind::kValue) continue;
    const ColumnStore::ValueZone& vz = zone.values[a];
    if (!vz.has) continue;
    const std::vector<Value>& values = store.value_column(a).values;
    for (size_t r = zone.begin_row; r < zone.end_row; ++r) {
      if (values[r] < vz.min || vz.max < values[r]) {
        return wrap_row(r, "value outside the partition zone map");
      }
    }
  }
  // Keys: the arena must reproduce the canonical encodings of the key
  // value columns, and the persisted index must map every key back to
  // its own row — which also proves uniqueness (two rows with equal
  // keys cannot both win their probe).
  const ColumnStore::EncodedKeys& keys = store.encoded_keys();
  std::string encoded;
  for (size_t r = zone.begin_row; r < zone.end_row; ++r) {
    store.EncodeKeyOfRow(r, &encoded);
    if (keys.key(r) != encoded) {
      return wrap_row(r, "key arena disagrees with the key value columns");
    }
    if (ctx.index != nullptr) {
      if (ctx.index->hashes()[r] != StableKeyHash(encoded)) {
        return wrap_row(r, "key index hash disagrees with the key");
      }
      const uint32_t found = ctx.index->Find(encoded);
      if (found == EncodedKeyIndex::kNoRow) {
        return wrap_row(r, "key index does not reach the row");
      }
      if (found != r) return wrap_row(r, "duplicate key");
    }
  }
  return Status::OK();
}

/// Bulk little-endian array append (alignment-safe on any source).
template <typename T>
void AppendRaw(const char* bytes, size_t count, std::vector<T>* dst) {
  if (count == 0) return;  // `bytes` may be null for an empty section
  const size_t old = dst->size();
  dst->resize(old + count);
  std::memcpy(dst->data() + old, bytes, count * sizeof(T));
}

struct ParsedRelation {
  ColumnStore store;
  std::optional<EncodedKeyIndex> index;
  std::shared_ptr<VerifyContext> ctx;
};

/// Owned-side accumulator for one packed evidence column, stitched
/// across chunks with rebased offsets.
struct EvidenceAccumulator {
  std::vector<uint64_t> words;
  std::vector<double> masses;
  std::vector<uint32_t> offsets{0};
};

/// The structural parse: domains, schemas, manifests, chunks, trailers.
/// Errors come back without source context; ReadErelColumnImageV3
/// annotates them with the source and byte position.
Status ParseV3(ByteReader& in, const char* data,
               const std::string& source,
               const std::shared_ptr<MappedFile>& mapping, Catalog* catalog,
               std::vector<ParsedRelation>* out) {
  {
    const char* magic;
    EVIDENT_RETURN_NOT_OK(in.Take(8, "magic", &magic));
    if (std::string_view(magic, 8) != kV3Magic) {
      return Status::ParseError(
          "unsupported column-image version (expected EVCIMG03)");
    }
  }

  EVIDENT_ASSIGN_OR_RETURN(uint32_t domain_count, in.U32("domain count"));
  EVIDENT_RETURN_NOT_OK(in.CheckCount(domain_count, 8, "domain"));
  std::vector<DomainPtr> domains;
  domains.reserve(domain_count);
  for (uint32_t d = 0; d < domain_count; ++d) {
    EVIDENT_ASSIGN_OR_RETURN(std::string name, in.Str("domain name"));
    EVIDENT_ASSIGN_OR_RETURN(uint32_t value_count,
                             in.U32("domain value count"));
    EVIDENT_RETURN_NOT_OK(in.CheckCount(value_count, 1, "domain value"));
    std::vector<Value> values;
    values.reserve(value_count);
    for (uint32_t v = 0; v < value_count; ++v) {
      EVIDENT_ASSIGN_OR_RETURN(Value value, in.ReadValue("domain value"));
      values.push_back(std::move(value));
    }
    EVIDENT_ASSIGN_OR_RETURN(DomainPtr domain,
                             Domain::Make(std::move(name), std::move(values)));
    EVIDENT_RETURN_NOT_OK(catalog->RegisterDomain(domain));
    domains.push_back(std::move(domain));
  }

  EVIDENT_ASSIGN_OR_RETURN(uint32_t relation_count, in.U32("relation count"));
  EVIDENT_RETURN_NOT_OK(in.CheckCount(relation_count, 30, "relation"));
  for (uint32_t rel_index = 0; rel_index < relation_count; ++rel_index) {
    EVIDENT_ASSIGN_OR_RETURN(std::string rel_name, in.Str("relation name"));
    EVIDENT_ASSIGN_OR_RETURN(uint32_t attr_count, in.U32("attribute count"));
    EVIDENT_RETURN_NOT_OK(in.CheckCount(attr_count, 9, "attribute"));
    std::vector<AttributeDef> attrs;
    attrs.reserve(attr_count);
    for (uint32_t a = 0; a < attr_count; ++a) {
      EVIDENT_ASSIGN_OR_RETURN(std::string attr_name,
                               in.Str("attribute name"));
      EVIDENT_ASSIGN_OR_RETURN(uint8_t kind, in.U8("attribute kind"));
      if (kind > 2) {
        return Status::ParseError("unknown attribute kind tag " +
                                  std::to_string(kind));
      }
      EVIDENT_ASSIGN_OR_RETURN(uint32_t domain_index,
                               in.U32("attribute domain index"));
      DomainPtr domain;
      if (domain_index != kNoDomain) {
        if (domain_index >= domains.size()) {
          return Status::ParseError("attribute '" + attr_name +
                                    "' references domain " +
                                    std::to_string(domain_index) + " of " +
                                    std::to_string(domains.size()));
        }
        domain = domains[domain_index];
      }
      attrs.emplace_back(std::move(attr_name),
                         static_cast<AttributeKind>(kind), std::move(domain));
    }
    EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema,
                             RelationSchema::Make(std::move(attrs)));
    EVIDENT_ASSIGN_OR_RETURN(uint64_t row_count, in.U64("row count"));
    EVIDENT_RETURN_NOT_OK(in.CheckCount(row_count, 1, "row"));
    const size_t rows = static_cast<size_t>(row_count);

    EVIDENT_ASSIGN_OR_RETURN(uint8_t scheme, in.U8("partition scheme"));
    if (scheme > 2) {
      return Status::ParseError("unknown partition scheme tag " +
                                std::to_string(scheme));
    }
    EVIDENT_ASSIGN_OR_RETURN(uint32_t partition_count,
                             in.U32("partition count"));
    if (partition_count == 0) {
      return Status::ParseError("relation '" + rel_name +
                                "': partition count is zero");
    }
    EVIDENT_RETURN_NOT_OK(in.CheckCount(partition_count, 61, "partition"));
    if (scheme == 0 && partition_count != 1) {
      return Status::ParseError(
          "relation '" + rel_name +
          "': monolithic image with more than one partition");
    }

    // Manifest: per-partition row counts, chunk extents and zone maps —
    // all structurally validated here (a scan may prune a partition on
    // these zones without ever running its semantic checks, so a zone
    // that survives this parse must at least be well-formed).
    std::vector<ChunkMeta> chunks(partition_count);
    std::vector<ColumnStore::PartitionZone> zones(partition_count);
    uint64_t manifest_rows = 0;
    for (uint32_t p = 0; p < partition_count; ++p) {
      ChunkMeta& chunk = chunks[p];
      ColumnStore::PartitionZone& zone = zones[p];
      EVIDENT_ASSIGN_OR_RETURN(chunk.rows, in.U64("partition row count"));
      EVIDENT_ASSIGN_OR_RETURN(chunk.offset, in.U64("chunk offset"));
      EVIDENT_ASSIGN_OR_RETURN(chunk.size, in.U64("chunk size"));
      EVIDENT_ASSIGN_OR_RETURN(chunk.crc, in.U32("chunk checksum"));
      if (chunk.rows > row_count - manifest_rows) {
        return Status::ParseError(
            "relation '" + rel_name +
            "': partition rows do not sum to the relation row count");
      }
      manifest_rows += chunk.rows;
      if (chunk.offset % 8 != 0 || chunk.size % 8 != 0) {
        return Status::ParseError("relation '" + rel_name +
                                  "': chunk extent not 8-aligned");
      }
      const uint64_t expected_offset =
          p == 0 ? 0 : chunks[p - 1].offset + chunks[p - 1].size;
      if (chunk.offset != expected_offset) {
        return Status::ParseError("relation '" + rel_name +
                                  "': chunk offsets are not contiguous");
      }
      EVIDENT_ASSIGN_OR_RETURN(zone.sn_min, in.F64("zone sn min"));
      EVIDENT_ASSIGN_OR_RETURN(zone.sn_max, in.F64("zone sn max"));
      EVIDENT_ASSIGN_OR_RETURN(zone.sp_min, in.F64("zone sp min"));
      EVIDENT_ASSIGN_OR_RETURN(zone.sp_max, in.F64("zone sp max"));
      if (chunk.rows > 0 &&
          !(zone.sn_min >= 0.0 && zone.sn_min <= zone.sn_max &&
            zone.sn_max <= 1.0 && zone.sp_min >= 0.0 &&
            zone.sp_min <= zone.sp_max && zone.sp_max <= 1.0)) {
        return Status::ParseError("relation '" + rel_name +
                                  "': partition support zone out of range");
      }
      zone.values.resize(schema->size());
      for (size_t a = 0; a < schema->size(); ++a) {
        EVIDENT_ASSIGN_OR_RETURN(uint8_t has_zone, in.U8("zone flag"));
        if (has_zone > 1) {
          return Status::ParseError("relation '" + rel_name +
                                    "': invalid zone flag");
        }
        if (has_zone == 0) continue;
        if (chunk.rows == 0) {
          return Status::ParseError("relation '" + rel_name +
                                    "': zone on an empty partition");
        }
        ColumnStore::ValueZone& vz = zone.values[a];
        EVIDENT_ASSIGN_OR_RETURN(vz.min, in.ReadValue("zone minimum"));
        EVIDENT_ASSIGN_OR_RETURN(vz.max, in.ReadValue("zone maximum"));
        if (vz.max < vz.min) {
          return Status::ParseError("relation '" + rel_name +
                                    "': partition zone bounds out of order");
        }
        vz.has = true;
      }
    }
    if (manifest_rows != row_count) {
      return Status::ParseError(
          "relation '" + rel_name +
          "': partition rows do not sum to the relation row count");
    }

    EVIDENT_RETURN_NOT_OK(in.Align8("chunk area padding"));
    const size_t chunk_area = in.pos();

    // Chunk parse. A single-partition mapped image is the zero-copy
    // path: its numeric arrays are borrowed straight out of the mapping.
    // Multi-partition mapped images are stitched with bulk copies (the
    // global column arrays must be contiguous); copied loads always
    // stitch. Value columns are decoded into Values in every mode.
    const bool borrow = mapping != nullptr && partition_count == 1;
    ColumnStore store = ColumnStore::EmptyLike(schema, rel_name);
    std::vector<EvidenceAccumulator> evidence(schema->size());
    std::vector<double> sn_acc, sp_acc;
    const char* sn_borrowed = nullptr;
    const char* sp_borrowed = nullptr;
    size_t row_base = 0;
    for (uint32_t p = 0; p < partition_count; ++p) {
      const ChunkMeta& chunk = chunks[p];
      const size_t chunk_rows = static_cast<size_t>(chunk.rows);
      zones[p].begin_row = row_base;
      zones[p].end_row = row_base + chunk_rows;
      if (in.pos() - chunk_area != chunk.offset) {
        return Status::ParseError(
            "relation '" + rel_name + "' partition " + std::to_string(p) +
            ": chunk does not start at its manifest offset");
      }
      for (size_t a = 0; a < schema->size(); ++a) {
        const AttributeDef& attr = schema->attribute(a);
        EVIDENT_ASSIGN_OR_RETURN(uint8_t tag, in.U8("column tag"));
        const bool tag_matches =
            (store.kind(a) == ColumnStore::ColumnKind::kValue && tag <= 2) ||
            (store.kind(a) == ColumnStore::ColumnKind::kEvidence &&
             tag == 3) ||
            (store.kind(a) == ColumnStore::ColumnKind::kBoxed && tag == 4);
        if (!tag_matches) {
          return Status::ParseError(
              "attribute '" + attr.name + "' stored with column tag " +
              std::to_string(tag) +
              ", which disagrees with its declaration");
        }
        switch (store.kind(a)) {
          case ColumnStore::ColumnKind::kValue: {
            std::vector<Value>& dst = store.value_column_mut(a).values;
            dst.reserve(dst.size() + chunk_rows);
            if (tag == 0) {
              for (size_t r = 0; r < chunk_rows; ++r) {
                EVIDENT_ASSIGN_OR_RETURN(Value v,
                                         in.ReadValue("column value"));
                if (attr.domain != nullptr && !attr.domain->Contains(v)) {
                  return Status::ParseError("value " + v.ToString() +
                                            " outside domain of '" +
                                            attr.name + "'");
                }
                dst.push_back(std::move(v));
              }
            } else {
              EVIDENT_RETURN_NOT_OK(in.Align8("value array padding"));
              const char* bytes;
              EVIDENT_RETURN_NOT_OK(
                  in.Take(chunk_rows * 8, "value array", &bytes));
              for (size_t r = 0; r < chunk_rows; ++r) {
                uint64_t bits;
                std::memcpy(&bits, bytes + r * 8, 8);
                Value v = tag == 1 ? Value(static_cast<int64_t>(bits))
                                   : Value(std::bit_cast<double>(bits));
                if (attr.domain != nullptr && !attr.domain->Contains(v)) {
                  return Status::ParseError("value " + v.ToString() +
                                            " outside domain of '" +
                                            attr.name + "'");
                }
                dst.push_back(std::move(v));
              }
            }
            break;
          }
          case ColumnStore::ColumnKind::kEvidence: {
            EvidenceAccumulator& acc = evidence[a];
            EVIDENT_ASSIGN_OR_RETURN(uint64_t focal_count,
                                     in.U64("focal count"));
            EVIDENT_RETURN_NOT_OK(in.CheckCount(focal_count, 16, "focal"));
            const size_t word_base =
                borrow ? 0 : acc.words.size();
            if (focal_count >
                std::numeric_limits<uint32_t>::max() - word_base) {
              return Status::ParseError(
                  "focal count exceeds the 32-bit offset space");
            }
            EVIDENT_RETURN_NOT_OK(in.Align8("focal array padding"));
            const char* word_bytes;
            const char* mass_bytes;
            const char* offset_bytes;
            EVIDENT_RETURN_NOT_OK(
                in.Take(focal_count * 8, "focal word", &word_bytes));
            EVIDENT_RETURN_NOT_OK(
                in.Take(focal_count * 8, "focal mass", &mass_bytes));
            EVIDENT_RETURN_NOT_OK(
                in.Take((chunk_rows + 1) * 4, "focal offset", &offset_bytes));
            // Structural: the chunk-local offset array must cover
            // exactly [0, focal_count] monotonically — after this, no
            // span lookup through the column can go out of bounds.
            std::vector<uint32_t> local(chunk_rows + 1);
            std::memcpy(local.data(), offset_bytes, (chunk_rows + 1) * 4);
            if (local[0] != 0 || local[chunk_rows] != focal_count) {
              return Status::ParseError("attribute '" + attr.name +
                                        "': malformed focal offset array");
            }
            for (size_t r = 0; r < chunk_rows; ++r) {
              if (local[r + 1] < local[r]) {
                return Status::ParseError(
                    "attribute '" + attr.name + "' row " +
                    std::to_string(row_base + r) +
                    ": focal offsets not monotone within the span arena");
              }
            }
            if (borrow) {
              ColumnStore::EvidenceColumn& col = store.evidence_column_mut(a);
              col.words = ColumnSpan<uint64_t>::Borrow(
                  reinterpret_cast<const uint64_t*>(word_bytes), focal_count,
                  mapping);
              col.masses = ColumnSpan<double>::Borrow(
                  reinterpret_cast<const double*>(mass_bytes), focal_count,
                  mapping);
              col.offsets = ColumnSpan<uint32_t>::Borrow(
                  reinterpret_cast<const uint32_t*>(offset_bytes),
                  chunk_rows + 1, mapping);
            } else {
              AppendRaw(word_bytes, focal_count, &acc.words);
              AppendRaw(mass_bytes, focal_count, &acc.masses);
              for (size_t r = 1; r <= chunk_rows; ++r) {
                acc.offsets.push_back(
                    static_cast<uint32_t>(word_base + local[r]));
              }
            }
            break;
          }
          case ColumnStore::ColumnKind::kBoxed: {
            // Boxed columns decode (and therefore validate) eagerly in
            // every mode — EvidenceSet::Make is the only constructor.
            std::vector<EvidenceSet>& dst = store.boxed_column_mut(a).sets;
            dst.reserve(dst.size() + chunk_rows);
            const size_t universe = attr.domain->size();
            for (size_t r = 0; r < chunk_rows; ++r) {
              EVIDENT_ASSIGN_OR_RETURN(uint32_t focal_count,
                                       in.U32("boxed focal count"));
              EVIDENT_RETURN_NOT_OK(
                  in.CheckCount(focal_count, 12, "boxed focal"));
              MassFunction mass(universe);
              mass.Reserve(focal_count);
              for (uint32_t f = 0; f < focal_count; ++f) {
                EVIDENT_ASSIGN_OR_RETURN(uint32_t member_count,
                                         in.U32("boxed member count"));
                EVIDENT_RETURN_NOT_OK(
                    in.CheckCount(member_count, 4, "boxed member"));
                ValueSet set(universe);
                for (uint32_t e = 0; e < member_count; ++e) {
                  EVIDENT_ASSIGN_OR_RETURN(uint32_t index,
                                           in.U32("boxed member index"));
                  if (index >= universe) {
                    return Status::ParseError(
                        "boxed focal member " + std::to_string(index) +
                        " outside the " + std::to_string(universe) +
                        "-value frame of '" + attr.name + "'");
                  }
                  set.Set(index);
                }
                EVIDENT_ASSIGN_OR_RETURN(double m, in.F64("boxed mass"));
                EVIDENT_RETURN_NOT_OK(mass.Add(set, m));
              }
              Result<EvidenceSet> es =
                  EvidenceSet::Make(attr.domain, std::move(mass));
              if (!es.ok()) {
                return Status::ParseError(
                    "attribute '" + attr.name + "' row " +
                    std::to_string(row_base + r) + ": " +
                    es.status().message());
              }
              dst.push_back(std::move(es).value());
            }
            break;
          }
        }
      }
      EVIDENT_RETURN_NOT_OK(in.Align8("membership padding"));
      const char* sn_bytes;
      const char* sp_bytes;
      EVIDENT_RETURN_NOT_OK(in.Take(chunk_rows * 8, "sn", &sn_bytes));
      EVIDENT_RETURN_NOT_OK(in.Take(chunk_rows * 8, "sp", &sp_bytes));
      if (borrow) {
        sn_borrowed = sn_bytes;
        sp_borrowed = sp_bytes;
      } else {
        AppendRaw(sn_bytes, chunk_rows, &sn_acc);
        AppendRaw(sp_bytes, chunk_rows, &sp_acc);
      }
      {
        const char* magic;
        EVIDENT_RETURN_NOT_OK(in.Take(8, "chunk statistics magic", &magic));
        if (std::string_view(magic, 8) != kStatisticsFooterMagic) {
          return Status::ParseError("relation '" + rel_name + "' partition " +
                                    std::to_string(p) +
                                    ": chunk statistics magic missing");
        }
        // Structurally validated, then discarded: per-chunk statistics
        // exist for future per-partition planning; nothing reads them
        // back yet.
        TableStatistics chunk_stats;
        EVIDENT_RETURN_NOT_OK(ReadStatisticsBody(
            in, "chunk statistics for relation '" + rel_name + "'",
            chunk.rows, schema->size(), &chunk_stats));
      }
      EVIDENT_RETURN_NOT_OK(in.Align8("chunk padding"));
      if (in.pos() - chunk_area - chunk.offset != chunk.size) {
        return Status::ParseError("relation '" + rel_name + "' partition " +
                                  std::to_string(p) +
                                  ": chunk size disagrees with its content");
      }
      row_base += chunk_rows;
    }

    if (borrow) {
      store.AdoptMemberships(
          ColumnSpan<double>::Borrow(
              reinterpret_cast<const double*>(sn_borrowed), rows, mapping),
          ColumnSpan<double>::Borrow(
              reinterpret_cast<const double*>(sp_borrowed), rows, mapping));
    } else {
      for (size_t a = 0; a < schema->size(); ++a) {
        if (store.kind(a) != ColumnStore::ColumnKind::kEvidence) continue;
        ColumnStore::EvidenceColumn& col = store.evidence_column_mut(a);
        col.words = std::move(evidence[a].words);
        col.masses = std::move(evidence[a].masses);
        col.offsets = std::move(evidence[a].offsets);
      }
      store.AdoptMemberships(ColumnSpan<double>(std::move(sn_acc)),
                             ColumnSpan<double>(std::move(sp_acc)));
    }

    // Trailer: key arena + offsets (copied — the key columns above are
    // decoded Values anyway), the persisted index, relation statistics.
    EVIDENT_ASSIGN_OR_RETURN(uint64_t arena_size, in.U64("key arena size"));
    const char* arena_bytes;
    EVIDENT_RETURN_NOT_OK(in.Take(static_cast<size_t>(arena_size),
                                  "key arena", &arena_bytes));
    const char* offset_bytes;
    EVIDENT_RETURN_NOT_OK(
        in.Take((rows + 1) * 4, "key offset", &offset_bytes));
    std::vector<uint32_t> key_offsets(rows + 1);
    std::memcpy(key_offsets.data(), offset_bytes, (rows + 1) * 4);
    if (key_offsets[0] != 0 || key_offsets[rows] != arena_size) {
      return Status::ParseError("relation '" + rel_name +
                                "': malformed key arena offsets");
    }
    for (size_t r = 0; r < rows; ++r) {
      if (key_offsets[r + 1] < key_offsets[r]) {
        return Status::ParseError("relation '" + rel_name +
                                  "': malformed key arena offsets");
      }
    }
    std::string arena(arena_bytes, static_cast<size_t>(arena_size));

    EVIDENT_ASSIGN_OR_RETURN(uint8_t has_index, in.U8("key index flag"));
    if (has_index > 1) {
      return Status::ParseError("relation '" + rel_name +
                                "': invalid key index flag");
    }
    std::optional<EncodedKeyIndex> index;
    if (has_index == 1) {
      EVIDENT_ASSIGN_OR_RETURN(uint64_t capacity,
                               in.U64("key index capacity"));
      if (capacity != EncodedKeyIndex::TableCapacityFor(rows)) {
        return Status::ParseError(
            "relation '" + rel_name +
            "': key index capacity disagrees with the row count");
      }
      const char* hash_bytes;
      EVIDENT_RETURN_NOT_OK(in.Take(rows * 8, "key index hash", &hash_bytes));
      const char* slot_bytes;
      EVIDENT_RETURN_NOT_OK(in.Take(static_cast<size_t>(capacity) * 4,
                                    "key index slot", &slot_bytes));
      std::vector<uint64_t> hashes(rows);
      // rows == 0 leaves both pointers null; memcpy forbids that even
      // for a zero count.
      if (rows > 0) std::memcpy(hashes.data(), hash_bytes, rows * 8);
      std::vector<uint32_t> slots(static_cast<size_t>(capacity));
      std::memcpy(slots.data(), slot_bytes,
                  static_cast<size_t>(capacity) * 4);
      // Structural: every slot names a real row or is empty, and the
      // filled count equals the row count. The latter guarantees empty
      // slots exist (capacity > rows by the load-factor bound), so index
      // probes always terminate even on a corrupt table.
      size_t filled = 0;
      for (uint32_t slot : slots) {
        if (slot == EncodedKeyIndex::kNoRow) continue;
        ++filled;
        if (slot >= rows) {
          return Status::ParseError("relation '" + rel_name +
                                    "': key index slot out of range");
        }
      }
      if (filled != rows) {
        return Status::ParseError(
            "relation '" + rel_name +
            "': key index slot count disagrees with the row count");
      }
      index.emplace();
      index->AdoptParts(arena, key_offsets, std::move(hashes),
                        std::move(slots));
    }

    EVIDENT_ASSIGN_OR_RETURN(uint8_t has_stats, in.U8("statistics flag"));
    if (has_stats > 1) {
      return Status::ParseError("relation '" + rel_name +
                                "': invalid statistics flag");
    }
    if (has_stats == 1) {
      const char* magic;
      EVIDENT_RETURN_NOT_OK(
          in.Take(8, "statistics footer magic", &magic));
      if (std::string_view(magic, 8) != kStatisticsFooterMagic) {
        return Status::ParseError("relation '" + rel_name +
                                  "': statistics footer magic missing");
      }
      TableStatistics stats;
      EVIDENT_RETURN_NOT_OK(ReadStatisticsBody(
          in, "statistics footer for relation '" + rel_name + "'", rows,
          schema->size(), &stats));
      store.AdoptStatistics(std::move(stats));
    }

    store.AdoptEncodedKeys(std::move(arena), std::move(key_offsets));
    store.AdoptPartitions(std::move(zones));

    auto ctx = std::make_shared<VerifyContext>();
    ctx->source = source;
    ctx->relation = rel_name;
    ctx->mapping = mapping;
    ctx->base = data;
    ctx->chunk_area = chunk_area;
    ctx->chunks = std::move(chunks);
    if (index.has_value()) {
      // The verifier gets its own copy: the relation's index moves out
      // of reach once the relation is registered.
      ctx->index = std::make_shared<const EncodedKeyIndex>(*index);
    }
    out->push_back(
        ParsedRelation{std::move(store), std::move(index), std::move(ctx)});
  }
  if (in.remaining() != 0) {
    return Status::ParseError("trailing bytes after the last relation");
  }
  return Status::OK();
}

}  // namespace

Result<Catalog> ReadErelColumnImageV3(const char* data, size_t size,
                                      const std::string& source,
                                      std::shared_ptr<MappedFile> mapping) {
  ByteReader in(data, size, source);
  Catalog catalog;
  std::vector<ParsedRelation> parsed;
  const Status status = ParseV3(in, data, source, mapping, &catalog, &parsed);
  if (!status.ok()) return in.Annotate(status);
  for (ParsedRelation& rel : parsed) {
    const std::shared_ptr<VerifyContext> ctx = rel.ctx;
    rel.store.InstallDeferredVerification(
        ctx->chunks.size(),
        [ctx](const ColumnStore& store, size_t p) {
          return VerifyRelationPartition(store, p, *ctx);
        });
    if (mapping == nullptr) {
      // Copied load: run every partition's semantic checks now, in
      // partition order, then drop the verifier — it references `data`,
      // which the caller may free once this returns.
      EVIDENT_RETURN_NOT_OK(rel.store.EnsureAllVerified());
      rel.store.ClearDeferredVerification();
    }
    ExtendedRelation adopted =
        rel.index.has_value()
            ? ExtendedRelation::AdoptColumnsWithIndex(std::move(rel.store),
                                                      std::move(*rel.index))
            : ExtendedRelation::AdoptColumns(std::move(rel.store));
    EVIDENT_RETURN_NOT_OK(catalog.RegisterRelation(std::move(adopted)));
  }
  return catalog;
}

}  // namespace evident
