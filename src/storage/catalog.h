#ifndef EVIDENT_STORAGE_CATALOG_H_
#define EVIDENT_STORAGE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/extended_relation.h"

namespace evident {

/// \brief A named collection of domains and extended relations — the
/// in-memory database the query engine runs against and the unit the
/// .erel format serializes.
class Catalog {
 public:
  Catalog() = default;

  /// \brief Registers a domain; fails on a name clash with a different
  /// structure (re-registering an equal domain is a no-op).
  Status RegisterDomain(const DomainPtr& domain);
  Result<DomainPtr> GetDomain(const std::string& name) const;
  bool HasDomain(const std::string& name) const;
  std::vector<std::string> DomainNames() const;

  /// \brief Registers (or replaces, when `replace`) a relation under its
  /// name; also registers the domains its schema references.
  Status RegisterRelation(ExtendedRelation relation, bool replace = false);
  Result<const ExtendedRelation*> GetRelation(const std::string& name) const;
  bool HasRelation(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

  /// \brief Name-ordered iteration without per-name lookups — the
  /// serializers' walk (deterministic output, no copies).
  const std::map<std::string, ExtendedRelation>& relations() const {
    return relations_;
  }

  size_t RelationCount() const { return relations_.size(); }

 private:
  // std::map keeps iteration deterministic for serialization.
  std::map<std::string, DomainPtr> domains_;
  std::map<std::string, ExtendedRelation> relations_;
};

}  // namespace evident

#endif  // EVIDENT_STORAGE_CATALOG_H_
