#ifndef EVIDENT_STORAGE_CATALOG_H_
#define EVIDENT_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/extended_relation.h"

namespace evident {

/// \brief One immutable version of the catalog: the domains and relations
/// that were registered when the version was published.
///
/// Snapshots are refcounted (`std::shared_ptr`) and never mutated after
/// publication, so any number of concurrent queries can read one — and
/// keep reading it while the owning Catalog publishes newer versions.
/// Relations are stored behind `shared_ptr` as well: a republish that
/// replaces one relation shares every other relation's object (and its
/// cached column image, encoded-key arena and statistics) with the
/// previous version instead of copying it.
///
/// Every relation in a snapshot is *warmed* before publication: its
/// column image, key index, encoded-key arena and table statistics are
/// built eagerly on the registering thread, so the lazy caches that are
/// not thread-safe on first touch are already built by the time multiple
/// query threads share the snapshot.
class CatalogSnapshot {
 public:
  CatalogSnapshot() = default;

  /// \brief Monotonically increasing per-Catalog version number; 0 for
  /// the empty initial snapshot. Plan caches key on (statement, version).
  uint64_t version() const { return version_; }

  Result<DomainPtr> GetDomain(const std::string& name) const;
  bool HasDomain(const std::string& name) const;
  std::vector<std::string> DomainNames() const;

  /// \brief The relation under `name`. The pointer is owned by this
  /// snapshot (shared with sibling versions) and stays valid for the
  /// snapshot's lifetime — pin the snapshot for the duration of use.
  Result<const ExtendedRelation*> GetRelation(const std::string& name) const;
  /// \brief GetRelation with shared ownership: valid even after every
  /// snapshot referencing the relation is gone.
  Result<std::shared_ptr<const ExtendedRelation>> GetRelationShared(
      const std::string& name) const;
  bool HasRelation(const std::string& name) const;
  std::vector<std::string> RelationNames() const;
  size_t RelationCount() const { return relations_.size(); }

  /// \brief Name-ordered iteration without per-name lookups — the
  /// serializers' walk (deterministic output, no copies).
  const std::map<std::string, std::shared_ptr<const ExtendedRelation>>&
  relations() const {
    return relations_;
  }

 private:
  friend class Catalog;

  uint64_t version_ = 0;
  // std::map keeps iteration deterministic for serialization.
  std::map<std::string, DomainPtr> domains_;
  std::map<std::string, std::shared_ptr<const ExtendedRelation>> relations_;
};

/// \brief A named collection of domains and extended relations — the
/// in-memory database the query engine runs against and the unit the
/// .erel format serializes.
///
/// The catalog is a sequence of immutable versions. Readers take the
/// current version with Snapshot() and keep using it for as long as they
/// like; RegisterDomain / RegisterRelation publish a new version
/// copy-on-write (the relation maps share every untouched relation with
/// the previous version). Registration and Snapshot() are safe to call
/// concurrently from any thread; a query that planned against version N
/// is never affected by a republish to version N+1 — this is what makes
/// concurrent sessions over one catalog well-defined.
///
/// The convenience accessors (GetRelation and friends) read the current
/// version. GetRelation's raw pointer remains valid until that relation
/// is *replaced* and every snapshot still referencing it is released;
/// callers that span a possible republish must hold a Snapshot() (the
/// query plan does — see LogicalPlan::snapshot).
class Catalog {
 public:
  Catalog();
  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other);
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;

  /// \brief Registers a domain; fails on a name clash with a different
  /// structure (re-registering an equal domain is a no-op).
  Status RegisterDomain(const DomainPtr& domain);
  Result<DomainPtr> GetDomain(const std::string& name) const;
  bool HasDomain(const std::string& name) const;
  std::vector<std::string> DomainNames() const;

  /// \brief Registers (or replaces, when `replace`) a relation under its
  /// name; also registers the domains its schema references. Publishes a
  /// new catalog version; in-flight queries keep the version they
  /// started on.
  Status RegisterRelation(ExtendedRelation relation, bool replace = false);
  Result<const ExtendedRelation*> GetRelation(const std::string& name) const;
  bool HasRelation(const std::string& name) const;
  std::vector<std::string> RelationNames() const;
  size_t RelationCount() const;

  /// \brief The current immutable version. Hold the returned pointer to
  /// pin every relation it references across any number of republishes.
  std::shared_ptr<const CatalogSnapshot> Snapshot() const;

  /// \brief The current version number (== Snapshot()->version()).
  uint64_t version() const;

 private:
  /// A mutable working copy of the current snapshot, ready for one
  /// registration; callers mutate it and hand it to Publish.
  std::shared_ptr<CatalogSnapshot> CloneLocked() const;
  void PublishLocked(std::shared_ptr<CatalogSnapshot> next);
  static Status AddDomain(CatalogSnapshot* snapshot, const DomainPtr& domain,
                          bool* changed);

  mutable std::mutex mu_;  // guards current_ (pointer swap only)
  std::shared_ptr<const CatalogSnapshot> current_;
};

}  // namespace evident

#endif  // EVIDENT_STORAGE_CATALOG_H_
