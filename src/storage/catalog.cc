#include "storage/catalog.h"

namespace evident {

Status Catalog::RegisterDomain(const DomainPtr& domain) {
  if (domain == nullptr) {
    return Status::InvalidArgument("cannot register a null domain");
  }
  auto it = domains_.find(domain->name());
  if (it != domains_.end()) {
    if (it->second->Equals(*domain)) return Status::OK();
    return Status::AlreadyExists("domain '" + domain->name() +
                                 "' already registered with different values");
  }
  domains_.emplace(domain->name(), domain);
  return Status::OK();
}

Result<DomainPtr> Catalog::GetDomain(const std::string& name) const {
  auto it = domains_.find(name);
  if (it == domains_.end()) {
    return Status::NotFound("no domain '" + name + "' in catalog");
  }
  return it->second;
}

bool Catalog::HasDomain(const std::string& name) const {
  return domains_.count(name) > 0;
}

std::vector<std::string> Catalog::DomainNames() const {
  std::vector<std::string> names;
  names.reserve(domains_.size());
  for (const auto& [name, domain] : domains_) names.push_back(name);
  return names;
}

Status Catalog::RegisterRelation(ExtendedRelation relation, bool replace) {
  if (relation.name().empty()) {
    return Status::InvalidArgument("relation must be named to be registered");
  }
  if (relation.schema() == nullptr) {
    return Status::InvalidArgument("relation '" + relation.name() +
                                   "' has no schema");
  }
  if (!replace && relations_.count(relation.name()) > 0) {
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already registered");
  }
  for (const AttributeDef& attr : relation.schema()->attributes()) {
    if (attr.domain != nullptr) {
      EVIDENT_RETURN_NOT_OK(RegisterDomain(attr.domain));
    }
  }
  relations_.insert_or_assign(relation.name(), std::move(relation));
  return Status::OK();
}

Result<const ExtendedRelation*> Catalog::GetRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "' in catalog");
  }
  return &it->second;
}

bool Catalog::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) names.push_back(name);
  return names;
}

}  // namespace evident
