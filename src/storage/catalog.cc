#include "storage/catalog.h"

#include <utility>

#include "core/column_store.h"

namespace evident {

namespace {

/// Builds every lazy cache the query layer may touch — the column image,
/// the key index, the encoded-key arena and the table statistics — on
/// the registering thread, before the relation becomes shared. The lazy
/// first-touch paths are not thread-safe; a published relation must not
/// have any left. Deliberately does NOT materialize rows: columnar scans
/// never need them, and charging a row materialization here would change
/// the row/columnar cost parity the storage tests pin down.
void WarmRelation(const ExtendedRelation& relation) {
  const ColumnStore& columns = relation.columns();
  (void)columns.encoded_keys();
  (void)columns.statistics();
  relation.EnsureKeyIndex();
}

}  // namespace

// --- CatalogSnapshot ------------------------------------------------------

Result<DomainPtr> CatalogSnapshot::GetDomain(const std::string& name) const {
  auto it = domains_.find(name);
  if (it == domains_.end()) {
    return Status::NotFound("no domain '" + name + "' in catalog");
  }
  return it->second;
}

bool CatalogSnapshot::HasDomain(const std::string& name) const {
  return domains_.count(name) > 0;
}

std::vector<std::string> CatalogSnapshot::DomainNames() const {
  std::vector<std::string> names;
  names.reserve(domains_.size());
  for (const auto& [name, domain] : domains_) names.push_back(name);
  return names;
}

Result<const ExtendedRelation*> CatalogSnapshot::GetRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "' in catalog");
  }
  return it->second.get();
}

Result<std::shared_ptr<const ExtendedRelation>>
CatalogSnapshot::GetRelationShared(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "' in catalog");
  }
  return it->second;
}

bool CatalogSnapshot::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> CatalogSnapshot::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) names.push_back(name);
  return names;
}

// --- Catalog --------------------------------------------------------------

Catalog::Catalog() : current_(std::make_shared<const CatalogSnapshot>()) {}

Catalog::Catalog(const Catalog& other) : current_(other.Snapshot()) {}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  auto snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(snapshot);
  return *this;
}

Catalog::Catalog(Catalog&& other) noexcept : current_(other.Snapshot()) {}

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this == &other) return *this;
  auto snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(snapshot);
  return *this;
}

std::shared_ptr<const CatalogSnapshot> Catalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t Catalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->version_;
}

std::shared_ptr<CatalogSnapshot> Catalog::CloneLocked() const {
  auto next = std::make_shared<CatalogSnapshot>(*current_);
  next->version_ = current_->version_ + 1;
  return next;
}

void Catalog::PublishLocked(std::shared_ptr<CatalogSnapshot> next) {
  current_ = std::move(next);
}

Status Catalog::AddDomain(CatalogSnapshot* snapshot, const DomainPtr& domain,
                          bool* changed) {
  if (domain == nullptr) {
    return Status::InvalidArgument("cannot register a null domain");
  }
  auto it = snapshot->domains_.find(domain->name());
  if (it != snapshot->domains_.end()) {
    if (it->second->Equals(*domain)) return Status::OK();
    return Status::AlreadyExists("domain '" + domain->name() +
                                 "' already registered with different values");
  }
  snapshot->domains_.emplace(domain->name(), domain);
  if (changed != nullptr) *changed = true;
  return Status::OK();
}

Status Catalog::RegisterDomain(const DomainPtr& domain) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = CloneLocked();
  bool changed = false;
  EVIDENT_RETURN_NOT_OK(AddDomain(next.get(), domain, &changed));
  // Re-registering an equal domain is a no-op: no new version.
  if (changed) PublishLocked(std::move(next));
  return Status::OK();
}

Result<DomainPtr> Catalog::GetDomain(const std::string& name) const {
  return Snapshot()->GetDomain(name);
}

bool Catalog::HasDomain(const std::string& name) const {
  return Snapshot()->HasDomain(name);
}

std::vector<std::string> Catalog::DomainNames() const {
  return Snapshot()->DomainNames();
}

Status Catalog::RegisterRelation(ExtendedRelation relation, bool replace) {
  if (relation.name().empty()) {
    return Status::InvalidArgument("relation must be named to be registered");
  }
  if (relation.schema() == nullptr) {
    return Status::InvalidArgument("relation '" + relation.name() +
                                   "' has no schema");
  }
  // Build the lazy caches before the relation becomes visible to other
  // threads; may allocate (and therefore throw bad_alloc under fault
  // injection) — the loader's existing guard catches that.
  WarmRelation(relation);
  auto shared = std::make_shared<const ExtendedRelation>(std::move(relation));

  std::lock_guard<std::mutex> lock(mu_);
  if (!replace && current_->relations_.count(shared->name()) > 0) {
    return Status::AlreadyExists("relation '" + shared->name() +
                                 "' already registered");
  }
  // All mutations go into one working copy so a multi-domain schema still
  // publishes exactly one new version (or none, on error).
  auto next = CloneLocked();
  for (const AttributeDef& attr : shared->schema()->attributes()) {
    if (attr.domain != nullptr) {
      EVIDENT_RETURN_NOT_OK(AddDomain(next.get(), attr.domain, nullptr));
    }
  }
  next->relations_.insert_or_assign(shared->name(), std::move(shared));
  PublishLocked(std::move(next));
  return Status::OK();
}

Result<const ExtendedRelation*> Catalog::GetRelation(
    const std::string& name) const {
  // The raw pointer's lifetime rides on the relation object, which the
  // current snapshot pins; see the class comment for the contract.
  return Snapshot()->GetRelation(name);
}

bool Catalog::HasRelation(const std::string& name) const {
  return Snapshot()->HasRelation(name);
}

std::vector<std::string> Catalog::RelationNames() const {
  return Snapshot()->RelationNames();
}

size_t Catalog::RelationCount() const { return Snapshot()->RelationCount(); }

}  // namespace evident
