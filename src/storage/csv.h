#ifndef EVIDENT_STORAGE_CSV_H_
#define EVIDENT_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "integration/raw_table.h"

namespace evident {

/// \brief Parses CSV text (first line = header) into a RawTable — the
/// export format component databases hand to attribute preprocessing.
///
/// Supports double-quoted fields (embedded separators and doubled-quote
/// escapes); no multi-line fields. `separator` defaults to ','; survey
/// exports with vote syntax ("d1:3; d2:2") typically use ';'-free commas
/// inside quotes.
Result<RawTable> ParseCsv(const std::string& name, const std::string& text,
                          char separator = ',');

/// \brief Reads a CSV file.
Result<RawTable> LoadCsvFile(const std::string& name, const std::string& path,
                             char separator = ',');

/// \brief Serializes a RawTable back to CSV (quoting when needed).
std::string WriteCsv(const RawTable& table, char separator = ',');

}  // namespace evident

#endif  // EVIDENT_STORAGE_CSV_H_
