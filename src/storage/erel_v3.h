#ifndef EVIDENT_STORAGE_EREL_V3_H_
#define EVIDENT_STORAGE_EREL_V3_H_

// Internal entry point of the EVCIMG03 reader (erel_format_v3.cc),
// shared by ReadErel's in-memory dispatch and LoadErelFile's mapped
// path. Not part of the public API.

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/catalog.h"
#include "storage/mmap_file.h"

namespace evident {

/// Parses `data[0, size)` as an EVCIMG03 image from `source`. With
/// `mapping` null the bytes are a private copy: columns are decoded into
/// owned storage and every partition is verified eagerly before the
/// catalog is returned (`data` may be freed afterwards). With `mapping`
/// set, `data` must be `mapping->data()`: numeric arrays are borrowed
/// (one partition) or stitched (several) out of the mapping, and the
/// per-partition semantic checks are deferred to first touch, keeping
/// the mapping alive through the borrowed spans and the verifier.
Result<Catalog> ReadErelColumnImageV3(const char* data, size_t size,
                                      const std::string& source,
                                      std::shared_ptr<MappedFile> mapping);

}  // namespace evident

#endif  // EVIDENT_STORAGE_EREL_V3_H_
