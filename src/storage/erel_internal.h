#ifndef EVIDENT_STORAGE_EREL_INTERNAL_H_
#define EVIDENT_STORAGE_EREL_INTERNAL_H_

// Shared building blocks of the binary .erel column-image readers and
// writers (v2 in erel_format.cc, v3 in erel_format_v3.cc): the
// little-endian put helpers, the bounds-checked ByteReader cursor, the
// CRC-32 and the STATS001 statistics-block codec. Internal to the
// storage layer — nothing here is part of the public API.

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/result.h"
#include "common/value.h"
#include "core/column_store.h"

namespace evident {
namespace erel_detail {

inline constexpr char kStatisticsFooterMagic[] = "STATS001";

/// IEEE CRC-32 (the zlib/PNG polynomial, reflected).
inline uint32_t Crc32(const char* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ static_cast<uint8_t>(data[i])) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

inline void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

inline void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kInt:
      PutU64(out, static_cast<uint64_t>(v.int_value()));
      break;
    case Value::Kind::kReal:
      PutF64(out, v.real_value());
      break;
    case Value::Kind::kString:
      PutStr(out, v.string_value());
      break;
  }
}

/// Bounds-checked cursor over a serialized blob. Every read names what
/// it was reading so truncation errors point at the damaged section;
/// the readers annotate any failure with the source (file path) and the
/// cursor position via Annotate().
class ByteReader {
 public:
  /// Reads `data[0, limit)` — the limit excludes a checksum trailer the
  /// caller already verified and stripped. `source` names where the
  /// bytes came from (a file path, or "<memory>").
  ByteReader(const char* data, size_t limit, std::string source)
      : data_(data), limit_(limit), source_(std::move(source)) {}

  size_t remaining() const { return limit_ - pos_; }
  size_t pos() const { return pos_; }
  const std::string& source() const { return source_; }

  /// Stamps a failure with the source and the byte position the reader
  /// had reached — the section that failed ends at (or just before)
  /// that offset.
  Status Annotate(const Status& status) const {
    if (status.ok()) return status;
    return Status(status.code(), source_ + ": " + status.message() +
                                     " [near byte " + std::to_string(pos_) +
                                     "]");
  }

  Status Take(size_t n, const char* what, const char** bytes) {
    if (remaining() < n) {
      return Status::ParseError(
          std::string("column-image file truncated reading ") + what);
    }
    *bytes = data_ + pos_;
    pos_ += n;
    return Status::OK();
  }

  /// Consumes the zero-or-more padding bytes before the next 8-aligned
  /// file offset (the alignment the mapped loader's borrowed numeric
  /// spans rely on).
  Status Align8(const char* what) {
    const size_t pad = (8 - pos_ % 8) % 8;
    const char* ignored;
    return Take(pad, what, &ignored);
  }

  Result<uint8_t> U8(const char* what) {
    const char* p;
    EVIDENT_RETURN_NOT_OK(Take(1, what, &p));
    return static_cast<uint8_t>(*p);
  }

  Result<uint32_t> U32(const char* what) {
    const char* p;
    EVIDENT_RETURN_NOT_OK(Take(4, what, &p));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    return v;
  }

  Result<uint64_t> U64(const char* what) {
    const char* p;
    EVIDENT_RETURN_NOT_OK(Take(8, what, &p));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    return v;
  }

  Result<double> F64(const char* what) {
    EVIDENT_ASSIGN_OR_RETURN(uint64_t bits, U64(what));
    return std::bit_cast<double>(bits);
  }

  Result<std::string> Str(const char* what) {
    EVIDENT_ASSIGN_OR_RETURN(uint32_t n, U32(what));
    const char* p;
    EVIDENT_RETURN_NOT_OK(Take(n, what, &p));
    return std::string(p, n);
  }

  Result<Value> ReadValue(const char* what) {
    EVIDENT_ASSIGN_OR_RETURN(uint8_t kind, U8(what));
    switch (kind) {
      case 0: {
        EVIDENT_ASSIGN_OR_RETURN(uint64_t v, U64(what));
        return Value(static_cast<int64_t>(v));
      }
      case 1: {
        EVIDENT_ASSIGN_OR_RETURN(double v, F64(what));
        return Value(v);
      }
      case 2: {
        EVIDENT_ASSIGN_OR_RETURN(std::string v, Str(what));
        return Value(std::move(v));
      }
      default:
        return Status::ParseError("unknown value kind tag " +
                                  std::to_string(kind) + " in " + what);
    }
  }

  /// Rejects an element count whose minimal serialized size already
  /// exceeds the remaining bytes — a corrupt count must fail here, not
  /// in a multi-gigabyte vector reserve.
  Status CheckCount(uint64_t count, size_t min_bytes_each, const char* what) {
    if (min_bytes_each != 0 && count > remaining() / min_bytes_each) {
      return Status::ParseError(std::string("implausible ") + what +
                                " count " + std::to_string(count) +
                                " for the remaining file size");
    }
    return Status::OK();
  }

 private:
  const char* data_;
  size_t limit_;
  size_t pos_ = 0;
  std::string source_;
};

/// Validates rows [begin_row, end_row) of one packed evidence column:
/// non-empty per-row spans of strictly ascending nonzero in-frame words,
/// masses in (0, 1], per-row sums within tolerance of 1 — the invariants
/// MassFunction::Validate enforces, checked straight on the spans. The
/// v2 reader runs it over the whole column; the v3 per-partition
/// verifier over one partition's row range (both loads of a file then
/// report the same message for the same bad row).
inline Status ValidateEvidenceRows(const std::string& attr_name,
                                   size_t universe,
                                   const ColumnStore::EvidenceColumn& col,
                                   size_t begin_row, size_t end_row) {
  const uint64_t frame_mask =
      universe >= 64 ? ~uint64_t{0} : (uint64_t{1} << universe) - 1;
  auto fail = [&](size_t row, const std::string& msg) {
    return Status::ParseError("attribute '" + attr_name + "' row " +
                              std::to_string(row) + ": " + msg);
  };
  for (size_t r = begin_row; r < end_row; ++r) {
    const uint32_t first = col.offsets[r];
    const uint32_t last = col.offsets[r + 1];
    if (last < first || last > col.words.size()) {
      return fail(r, "focal offsets not monotone within the span arena");
    }
    if (first == last) return fail(r, "empty mass function");
    double sum = 0.0;
    uint64_t prev = 0;
    for (uint32_t k = first; k < last; ++k) {
      const uint64_t w = col.words[k];
      if (w == 0) return fail(r, "mass on the empty set");
      if ((w & ~frame_mask) != 0) return fail(r, "focal word outside frame");
      if (k > first && w <= prev) {
        return fail(r, "focal words not strictly ascending");
      }
      prev = w;
      const double m = col.masses[k];
      if (!(m > 0.0) || m > 1.0 + kMassEpsilon) {
        return fail(r, "focal mass outside (0, 1]");
      }
      sum += m;
    }
    // Same tolerance as MassFunction::Validate: relations built from
    // rounded text literals carry sums within 1e-6 of 1, not 1e-9.
    if (!ApproxEqual(sum, 1.0, 1e-6)) {
      return fail(r, "focal masses sum to " + std::to_string(sum) +
                         ", expected 1");
    }
  }
  return Status::OK();
}

/// Serializes a TableStatistics as a STATS001 body (no magic): row
/// count, per-attribute distinct + exact flag, the two 16-bin support
/// histograms.
inline void WriteStatisticsBody(std::string* out, const TableStatistics& s) {
  PutU64(out, s.row_count);
  PutU32(out, static_cast<uint32_t>(s.attributes.size()));
  for (const TableStatistics::Attribute& attr : s.attributes) {
    PutU64(out, attr.distinct);
    PutU8(out, attr.exact ? 1 : 0);
  }
  for (uint64_t count : s.sn_histogram) PutU64(out, count);
  for (uint64_t count : s.sp_histogram) PutU64(out, count);
}

/// Parses and structurally validates a STATS001 body written by
/// WriteStatisticsBody; `context` prefixes every error (e.g.
/// "statistics footer for relation 'x'").
inline Status ReadStatisticsBody(ByteReader& in, const std::string& context,
                                 uint64_t expected_rows, size_t expected_attrs,
                                 TableStatistics* stats) {
  auto fail = [&](const std::string& msg) {
    return Status::ParseError(context + ": " + msg);
  };
  EVIDENT_ASSIGN_OR_RETURN(stats->row_count, in.U64("statistics row count"));
  if (stats->row_count != expected_rows) {
    return fail("row count disagrees with the relation");
  }
  EVIDENT_ASSIGN_OR_RETURN(uint32_t attr_count,
                           in.U32("statistics attribute count"));
  if (attr_count != expected_attrs) {
    return fail("attribute count disagrees with the schema");
  }
  stats->attributes.reserve(attr_count);
  for (uint32_t a = 0; a < attr_count; ++a) {
    TableStatistics::Attribute attr;
    EVIDENT_ASSIGN_OR_RETURN(attr.distinct,
                             in.U64("statistics distinct count"));
    if (attr.distinct > stats->row_count) {
      return fail("distinct count exceeds the row count");
    }
    EVIDENT_ASSIGN_OR_RETURN(uint8_t exact, in.U8("statistics exact flag"));
    if (exact > 1) return fail("exact flag is not 0 or 1");
    attr.exact = exact != 0;
    stats->attributes.push_back(attr);
  }
  for (std::vector<uint64_t>* hist :
       {&stats->sn_histogram, &stats->sp_histogram}) {
    hist->reserve(TableStatistics::kHistogramBins);
    uint64_t sum = 0;
    for (size_t b = 0; b < TableStatistics::kHistogramBins; ++b) {
      EVIDENT_ASSIGN_OR_RETURN(uint64_t count,
                               in.U64("statistics histogram bin"));
      if (count > stats->row_count - sum) {
        return fail("support histogram does not sum to the row count");
      }
      sum += count;
      hist->push_back(count);
    }
    if (sum != stats->row_count) {
      return fail("support histogram does not sum to the row count");
    }
  }
  return Status::OK();
}

}  // namespace erel_detail
}  // namespace evident

#endif  // EVIDENT_STORAGE_EREL_INTERNAL_H_
