#ifndef EVIDENT_STORAGE_MMAP_FILE_H_
#define EVIDENT_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"

namespace evident {

/// \brief A read-only memory mapping of a whole file, shared by every
/// ColumnSpan borrowed out of it: the spans keep the MappedFile alive
/// through their backing shared_ptr, and the mapping (plus its fd,
/// which is closed as soon as the mapping exists) goes away with the
/// last span.
///
/// The mapping base is page-aligned, so a borrowed span is
/// alignof(T)-aligned exactly when its *file offset* is — the EVCIMG03
/// writer pads numeric arrays to 8-byte file offsets for this reason.
///
/// Open/map/close failures honour the fault-injection sites kOpen,
/// kMmap and kClose; live_mappings() counts mappings currently held so
/// tests can assert that failed loads leak neither an fd nor a mapping.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with NotFound when the file cannot be
  /// opened and ExecError on fstat/mmap/close failures; never leaks the
  /// fd or a partial mapping on any failure path.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }

  /// Mappings currently alive process-wide (leak counter for tests).
  static uint64_t live_mappings();

 private:
  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace evident

#endif  // EVIDENT_STORAGE_MMAP_FILE_H_
