#include "core/fault_injection.h"

namespace evident {
namespace fault {

namespace {

struct State {
  bool armed = false;
  Site site = Site::kAllocation;
  uint64_t nth = 0;  // 0 = count-only
  uint64_t hits = 0;
};

// Plain POD thread_local: no dynamic initialization, so consulting it
// from the allocation hook can never itself allocate.
thread_local State t_state;

}  // namespace

void Arm(Site site, uint64_t nth) {
  t_state.armed = true;
  t_state.site = site;
  t_state.nth = nth;
  t_state.hits = 0;
}

void Disarm() { t_state.armed = false; }

uint64_t Hits() { return t_state.hits; }

bool ShouldFail(Site site) {
  State& s = t_state;
  if (!s.armed || s.site != site) return false;
  ++s.hits;
  if (s.nth != 0 && s.hits == s.nth) {
    s.armed = false;  // one-shot: the error path after the fault succeeds
    return true;
  }
  return false;
}

}  // namespace fault
}  // namespace evident
