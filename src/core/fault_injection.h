#ifndef EVIDENT_CORE_FAULT_INJECTION_H_
#define EVIDENT_CORE_FAULT_INJECTION_H_

#include <cstdint>

namespace evident {
namespace fault {

/// \brief Deterministic fault-injection points, consulted by the storage
/// layer's syscall wrappers and (in the test binary's global operator
/// new override) by the allocator.
///
/// Zero-cost when disarmed: each hook is one thread_local flag check.
/// State is thread_local on purpose — an armed test thread never makes
/// the morsel pool's worker threads fail (a std::bad_alloc escaping a
/// worker would terminate the process), so allocation faults stay on the
/// serial storage paths where they are catchable.
enum class Site {
  kAllocation,  // operator new (test-binary override) -> std::bad_alloc
  kWrite,       // write() fails with EIO
  kShortWrite,  // write() writes only half the requested bytes
  kFlush,       // fsync() fails with EIO
  kRename,      // rename() fails with EIO
  kRead,        // read() fails with EIO
  kShortRead,   // read() reports EOF early (simulated truncation)
  kEintr,       // read()/write() fails once with EINTR
  kOpen,        // open() fails with EIO
  kMmap,        // mmap() fails with ENOMEM
  kClose,       // close() fails with EIO
};

/// \brief Arms the calling thread's injector: the `nth` (1-based) hit of
/// `site` fails, after which the injector disarms itself — one-shot, so
/// the error path that fires *after* the fault (message construction,
/// cleanup) runs fault-free. `nth == 0` arms in count-only mode: hits
/// are counted (see Hits) but never fail — the way a test discovers how
/// many injection points an operation crosses before sweeping them.
void Arm(Site site, uint64_t nth);

/// \brief Disarms the calling thread's injector. Hit counts survive
/// until the next Arm.
void Disarm();

/// \brief Hits of the armed site since the last Arm on this thread.
uint64_t Hits();

/// \brief True when this hit of `site` must fail. Counts the hit when
/// the calling thread is armed for `site`; disarms on failure.
bool ShouldFail(Site site);

}  // namespace fault
}  // namespace evident

#endif  // EVIDENT_CORE_FAULT_INJECTION_H_
