#ifndef EVIDENT_CORE_QUERY_CONTEXT_H_
#define EVIDENT_CORE_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "core/schema.h"

namespace evident {

/// \brief Per-query resource governor: a deadline, a cooperative cancel
/// flag, a memory budget and a row cap, shared by every executor stage
/// of one query.
///
/// The context is installed around execution with ScopedQueryContext and
/// discovered by the operator layer and the morsel scheduler through
/// CurrentQueryContext() — plan execution needs no per-call plumbing.
/// Workers poll at morsel boundaries (PollMorsel), serial enumeration
/// loops poll every ~1024 iterations (PollTick), and every operator
/// charges its *logical* output (rows × FootprintPerRow(schema)) against
/// the shared accountant.
///
/// **Determinism.** Charges are logical, not physical: the row and
/// columnar executors for the same operator produce the same output
/// rows, so they charge the identical byte/row sequence in the identical
/// order (plan execution is serial across operators; only intra-operator
/// passes are parallel, and those accumulate monotone counts whose trip
/// condition depends only on the totals). A memory-budget or row-cap
/// error therefore carries the identical message across
/// {row, columnar} × {fused} × thread counts. Deadline and cancellation
/// errors are inherently timing-dependent; their messages are stable in
/// form but not in *when* they fire.
///
/// **First-error stickiness.** The first failure recorded (from any
/// thread) wins; every later poll observes the same Status, so all
/// executor stages of a tripped query unwind with one consistent error
/// and the engine, worker pool and shared catalog images stay intact for
/// the next query.
///
/// Configuration (set_deadline / set_memory_budget / set_row_cap) must
/// happen before BeginQuery; RequestCancel is safe from any thread at
/// any time.
class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// \name Limits. Zero/unset means unlimited.
  /// @{
  void set_deadline(std::chrono::nanoseconds deadline) {
    deadline_duration_ = deadline;
    has_deadline_ = deadline.count() > 0;
  }
  void clear_deadline() { has_deadline_ = false; }
  void set_memory_budget(uint64_t bytes) { memory_budget_ = bytes; }
  void set_row_cap(uint64_t rows) { row_cap_ = rows; }
  /// @}

  /// \brief Cooperatively cancels the running query from any thread.
  void RequestCancel() { cancel_.store(true, std::memory_order_release); }

  /// \brief Resets all per-query state (counters, cancel flag, first
  /// error) and stamps the absolute deadline. Call once per query,
  /// before execution starts.
  void BeginQuery();

  /// \name Hot-path polls.
  /// @{
  /// Morsel-boundary poll: counts the morsel, then checks cancel +
  /// deadline. Ungoverned queries never reach this (the scheduler's
  /// CurrentQueryContext() load returns null).
  Status PollMorsel();
  /// Serial-loop poll (multiway enumeration, product tiling, union
  /// verdict walks): cancel + deadline only, call every ~1024 iterations.
  Status PollTick();
  /// @}

  /// \name Accounting.
  /// @{
  /// The deterministic logical per-row cost of a schema (membership pair
  /// + per-attribute model cost) — identical for row and columnar
  /// executors by construction, which is what makes budget errors
  /// mode-invariant.
  static uint64_t FootprintPerRow(const RelationSchema& schema);

  /// Charges `rows` output rows against the row cap. Monotone and
  /// cumulative: parallel emission sites may charge per morsel; the trip
  /// condition depends only on the running total.
  Status ChargeRows(uint64_t rows);

  /// Charges `rows` rows of `schema` against the memory budget — the
  /// lump charge every operator makes for its logical output at
  /// completion.
  Status ChargeMemory(const RelationSchema& schema, uint64_t rows);

  /// ChargeRows then ChargeMemory, the standard completion charge for
  /// operators that emit in one lump.
  Status ChargeOutput(const RelationSchema& schema, uint64_t rows);
  /// @}

  /// \brief True once any limit tripped (or cancel was requested and
  /// observed). Cheap enough for per-pass checks.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// \brief The sticky first error (OK if none). Operators call this
  /// after a parallel pass whose workers stopped claiming morsels.
  Status first_error() const;

  /// \name Introspection (tests, the shell's \\limits display).
  /// @{
  uint64_t morsels_completed() const {
    return morsels_.load(std::memory_order_relaxed);
  }
  uint64_t rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t memory_budget() const { return memory_budget_; }
  uint64_t row_cap() const { return row_cap_; }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::nanoseconds deadline_duration() const {
    return deadline_duration_;
  }
  /// @}

  /// \brief Records `error` as the first error if none is set yet;
  /// otherwise keeps the existing one. Thread-safe.
  void Fail(Status error);

 private:
  Status CheckCancelAndDeadline();

  // Configuration (stable while a query runs).
  std::chrono::nanoseconds deadline_duration_{0};
  bool has_deadline_ = false;
  uint64_t memory_budget_ = 0;  // bytes; 0 = unlimited
  uint64_t row_cap_ = 0;        // rows; 0 = unlimited

  // Per-query state.
  std::chrono::steady_clock::time_point deadline_tp_;
  std::atomic<bool> cancel_{false};
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> morsels_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
  mutable std::mutex mu_;  // guards first_error_
  Status first_error_;
};

/// \brief The governed query running on *this thread*, or null.
/// Thread-local: each session/engine thread installs its own context
/// around execution, so any number of governed queries run concurrently
/// without stomping each other's deadlines, budgets or cancel flags.
/// Morsel-pool workers are not the installing thread — they inherit the
/// submitting thread's context through the pool's job struct (the
/// scheduler installs it in each worker's slot for the job's duration).
/// Ungoverned execution costs a single thread-local load wherever the
/// scheduler or an operator polls.
QueryContext* CurrentQueryContext();

/// \brief Installs a context as this thread's CurrentQueryContext() for
/// a scope, restoring the previous one (nest-aware) on destruction.
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext* ctx);
  ~ScopedQueryContext();
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext* prev_;
};

}  // namespace evident

#endif  // EVIDENT_CORE_QUERY_CONTEXT_H_
