#ifndef EVIDENT_CORE_PROPERTIES_H_
#define EVIDENT_CORE_PROPERTIES_H_

#include <cstdint>

#include "common/result.h"
#include "core/extended_relation.h"

namespace evident {

/// \brief Utilities that make the paper's §3.6 closure and boundedness
/// properties (Theorem 1) executable. The property tests and the
/// bench_figure-level harnesses use these to verify every extended
/// operation.

/// \brief Closure property check: every tuple of `relation` must have
/// sn > 0. Returns OutOfRange naming the first offending tuple otherwise.
Status CheckClosureProperty(const ExtendedRelation& relation);

/// \brief Materializes a finite stand-in for the complement relation R̄
/// of §3.6: `count` hypothetical tuples with fresh keys (never colliding
/// with stored ones), vacuous evidence attributes, and membership
/// (0, sp) with sp drawn in [0,1] — i.e. no necessary support.
///
/// The true complement is infinite; boundedness is universally quantified
/// over its tuples, so any finite sample is a valid test instance.
/// `key_tag` keeps complements of different relations key-disjoint.
Result<ExtendedRelation> MakeComplementSample(const ExtendedRelation& relation,
                                              size_t count, uint64_t seed,
                                              const std::string& key_tag);

/// \brief R ∪̃ R̄: appends the complement sample's tuples to a copy of
/// `relation` (keys are disjoint by construction, so this is exactly the
/// extended union and avoids requiring Union to accept sn = 0 inserts).
Result<ExtendedRelation> UnionWithComplement(const ExtendedRelation& relation,
                                             const ExtendedRelation& complement);

/// \brief Boundedness property check: the sn > 0 portions of `lhs` and
/// `rhs` (the operation applied without and with complements) must
/// coincide. Returns OutOfRange describing the first difference.
Status CheckBoundednessEquality(const ExtendedRelation& lhs,
                                const ExtendedRelation& rhs,
                                double eps = 1e-9);

/// \brief The sn > 0 restriction of a relation (drops hypothetical
/// tuples).
Result<ExtendedRelation> PositiveSupportPart(const ExtendedRelation& relation);

}  // namespace evident

#endif  // EVIDENT_CORE_PROPERTIES_H_
