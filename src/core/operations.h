#ifndef EVIDENT_CORE_OPERATIONS_H_
#define EVIDENT_CORE_OPERATIONS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/extended_relation.h"
#include "core/predicate.h"
#include "core/threshold.h"
#include "ds/combination.h"

namespace evident {

/// \brief Selects the storage mode the relational operators execute in.
///
/// Columnar execution (the default) runs the hot operators —
/// Select's predicate evaluation, Union/MergeTuples' per-key combination
/// pass, and the hash-join probe's residual filtering — column-at-a-time
/// over each relation's packed ColumnStore image and the batch
/// combination kernel. Row execution is the reference interpretation,
/// tuple-at-a-time over the row store. Both modes produce bit-identical
/// relations and identical first-error behaviour (enforced by
/// kernel_differential_test); the toggle exists for that differential
/// and for embedders that want to avoid the column image's memory.
void SetColumnarExecution(bool enabled);
bool ColumnarExecutionEnabled();

/// \brief Extended selection σ̃^Q_P (§3.1).
///
/// For each tuple r: computes the predicate support F_SS(r, P), revises
/// the membership via F_TM (component-wise product), and keeps the tuple
/// when the revised membership passes the threshold Q. Original attribute
/// values are retained (the paper's departure from DeMichiel). Tuples
/// whose revised sn is 0 are always dropped, keeping the result a valid
/// extended relation under CWA_ER (the paper's consistency requirement on
/// Q).
Result<ExtendedRelation> Select(const ExtendedRelation& input,
                                const PredicatePtr& predicate,
                                const MembershipThreshold& threshold =
                                    MembershipThreshold());

/// \brief The query optimizer's pushdown prefilter: drops every tuple
/// for which *any* of `conjuncts` evaluates to a support pair with
/// sn == 0, keeping cells and membership byte-identical (no F_TM
/// revision, no threshold).
///
/// This is the exact-pushdown form of selection below a join/product: a
/// zero-sn conjunct contributes an exactly-zero factor to the revised
/// membership of every pair the tuple appears in, and sn = 0 pairs are
/// always dropped under CWA_ER, so removing the tuple early cannot
/// change the result — while leaving the conjunct in the downstream
/// predicate keeps the surviving pairs' floating-point membership
/// arithmetic bit-identical to the unoptimized plan (support factors
/// multiply in their original order). The output keeps the input's
/// *name* so product-schema qualification downstream is unchanged.
/// Callers (the optimizer) only push conjuncts that bind completely, so
/// evaluation cannot fail; a conjunct that does not bind falls back to
/// the interpreted row path, preserving error behaviour.
Result<ExtendedRelation> FilterPositiveSupport(
    const ExtendedRelation& input, const std::vector<PredicatePtr>& conjuncts);

/// \brief What extended union does when Dempster combination of some
/// attribute (or of the membership) hits total conflict (kappa == 1).
enum class TotalConflictPolicy {
  /// Fail the union, naming the key — "inform the data administrators"
  /// (the paper's suggested action).
  kError,
  /// Drop the conflicting tuple pair from the result.
  kSkipTuple,
  /// Replace the conflicting attribute value by the vacuous evidence set
  /// (total ignorance) and keep the tuple.
  kVacuous,
};

/// \brief What extended union does when two matched tuples disagree on a
/// *definite* (non-evidence) non-key attribute — a conflict the paper
/// assumes preprocessing has eliminated.
enum class DefiniteConflictPolicy {
  kError,
  kPreferLeft,
  kPreferRight,
};

struct UnionOptions {
  /// Rule used to combine both attribute evidence and membership.
  CombinationRule rule = CombinationRule::kDempster;
  TotalConflictPolicy on_total_conflict = TotalConflictPolicy::kError;
  DefiniteConflictPolicy on_definite_conflict = DefiniteConflictPolicy::kError;
};

/// \brief The shared precondition of Union/Intersect (null schemas,
/// union compatibility), exposed so the query planner can report the
/// identical error at plan-build time.
Status CheckUnionCompatible(const ExtendedRelation& left,
                            const ExtendedRelation& right);

/// \brief Extended union R ∪̃_K S (§3.2) — the paper's tuple-merging
/// operation.
///
/// Requires union-compatible schemas. Tuples whose keys appear in only
/// one relation are retained unchanged (the other source is assumed
/// totally ignorant about them, and combining with vacuous evidence is
/// the identity). Tuples with matching keys have every uncertain
/// attribute combined by Dempster's rule and their membership pairs
/// combined on the boolean frame.
Result<ExtendedRelation> Union(const ExtendedRelation& left,
                               const ExtendedRelation& right,
                               const UnionOptions& options = UnionOptions());

/// \brief Extended intersection R ∩̃_K S — an *extension beyond the
/// paper*: like the extended union but keeping only entities present in
/// both sources (inner merge). Useful when the integrator only trusts
/// corroborated entities. Matched tuples are combined exactly as in
/// Union; unmatched tuples are dropped. Under columnar execution the
/// kept rows (exactly the union's merged pairs, known from the keys the
/// union pass already encoded and probed) are spliced straight out of
/// the union's column image — no re-encoding, no row materialization.
Result<ExtendedRelation> Intersect(const ExtendedRelation& left,
                                   const ExtendedRelation& right,
                                   const UnionOptions& options =
                                       UnionOptions());

/// \brief Folds the extended union over three or more sources
/// (integration of N component databases). Dempster's rule is
/// associative and commutative, so the result does not depend on the
/// integration order; fails on an empty list.
Result<ExtendedRelation> UnionAll(const std::vector<ExtendedRelation>& sources,
                                  const UnionOptions& options =
                                      UnionOptions());

/// \brief Extended projection π̃_Ã (§3.3). `attributes` must include every
/// key attribute (the paper projects key + membership always); the
/// implicit membership attribute is always carried. Under columnar
/// execution the picked columns are spliced as whole column copies (no
/// combination, no row materialization); the row path's insert-time
/// duplicate-key guarantee is preserved by a uniqueness check over the
/// encoded keys (which reuses the input's cached encoded-key arena when
/// the projection keeps the key order).
Result<ExtendedRelation> Project(const ExtendedRelation& input,
                                 const std::vector<std::string>& attributes);

/// \brief Project's precondition checks (known attributes, no
/// duplicates, keys retained) and output schema, shared with the query
/// planner so plan-build-time and execution-time projection errors carry
/// identical messages. `indices` (optional) receives each projected
/// attribute's position in `schema`.
Result<SchemaPtr> ResolveProjectionSchema(
    const RelationSchema& schema, const std::vector<std::string>& attributes,
    std::vector<size_t>* indices = nullptr);

/// \brief The concatenated schema of R ×̃ S: left's attributes then
/// right's, with colliding names qualified as "<relation>.<attribute>".
/// Shared by Product, the hash join and the query engine's join
/// dispatch (which binds the join predicate against this schema without
/// materializing the product).
Result<SchemaPtr> MakeProductSchema(const ExtendedRelation& left,
                                    const ExtendedRelation& right);

/// \brief Extended cartesian product R ×̃ S (§3.4): concatenates tuple
/// pairs and multiplies memberships via F_TM. Attribute name collisions
/// are qualified as "<relation>.<attribute>"; the result's key is the
/// union of both keys. Under columnar execution the output's column
/// image is spliced directly from the operands' images (no row objects
/// are built); the result is bit-identical to the row path.
Result<ExtendedRelation> Product(const ExtendedRelation& left,
                                 const ExtendedRelation& right);

/// \brief Extended join R ⋈̃^Q_P S (§3.5), defined as σ̃^Q_P (R ×̃ S).
///
/// Execution does not materialize the product when it can avoid it: the
/// predicate is split into definite equi-conjuncts (L.a = R.b) and a
/// residual (see AnalyzeJoinPredicate). With at least one equi-conjunct
/// the join hash-partitions — an open-addressing table is built on the
/// smaller operand keyed by the equi-key cell values, the larger operand
/// probes it (tuple ranges sharded across threads), and only matching
/// pairs are materialized and filtered by the residual + threshold.
/// Equality of definite cells contributes exactly (1,1)/(0,0) support,
/// and sn = 0 pairs are always dropped under CWA_ER, so the result is
/// identical (bit-for-bit on masses and memberships) to the definition;
/// predicates without equi-conjuncts fall back to Select-over-Product.
/// Under columnar execution with a fully-bindable residual, the join
/// probes the operands' column stores and splices the matched pairs'
/// column slices straight into the output's column image — neither
/// operand rows nor result rows are materialized.
/// Relations are sets: the result's *row order* is implementation-
/// defined (the hash path emits rows grouped by probe-side tuple, and
/// the probe side is whichever operand is larger), deterministic for
/// fixed operands and any thread count, but not necessarily the
/// left-major order of the materialized product.
Result<ExtendedRelation> Join(const ExtendedRelation& left,
                              const ExtendedRelation& right,
                              const PredicatePtr& predicate,
                              const MembershipThreshold& threshold =
                                  MembershipThreshold());

/// \brief Which operand the hash equi-join builds its table on. kAuto
/// picks the smaller operand at execution time; the query optimizer
/// overrides it from plan-time cardinality estimates. The choice only
/// affects performance and the (implementation-defined) row order of the
/// result, never its contents.
enum class JoinBuildSide { kAuto, kLeft, kRight };

/// \brief A join probe operand delivered as a fused pipeline stage
/// instead of a materialized relation: the probe-side argument is the
/// unfiltered (catalog) relation, and `conjuncts` are the prefilter
/// conjuncts that would otherwise have produced an intermediate
/// FilterPositiveSupport relation below the join. The probe loop
/// evaluates them per probe morsel over the shared column image while
/// the build table is warm and skips rows where any conjunct loses all
/// support — the result is bit-identical to joining against the
/// materialized prefilter output. Requires an explicit build side (the
/// fused side must be the probe side, and kAuto's size heuristic would
/// otherwise see the unfiltered cardinality).
struct FusedJoinProbe {
  std::vector<PredicatePtr> conjuncts;
};

/// \brief Join for callers that already built the operands' product
/// schema (the query engine binds WHERE against it before joining);
/// `product_schema` must be MakeProductSchema(left, right)'s result.
/// Saves rebuilding the schema once per call — Join(l, r, p, q) is
/// exactly this with a fresh schema. When `fused_probe` is non-null the
/// probe-side operand (the side opposite `build_side`, which must not be
/// kAuto) is prefiltered in the probe loop itself (see FusedJoinProbe);
/// execution routes that cannot fuse (row mode, interpreted residuals,
/// no equi-conjunct) materialize the prefilter first and behave
/// identically.
Result<ExtendedRelation> JoinWithProductSchema(
    const ExtendedRelation& left, const ExtendedRelation& right,
    const PredicatePtr& predicate, const MembershipThreshold& threshold,
    SchemaPtr product_schema, JoinBuildSide build_side = JoinBuildSide::kAuto,
    const FusedJoinProbe* fused_probe = nullptr);

/// \brief The flat concatenated schema of an n-way product
/// R1 ×̃ ... ×̃ Rn: every operand's attributes in operand order, with any
/// attribute name occurring in more than one operand qualified as
/// "<relation>.<attribute>". The n = 2 case matches MakeProductSchema
/// except that qualification is by name multiplicity across the whole
/// list (a name unique to one operand is never qualified).
Result<SchemaPtr> MakeMultiwayProductSchema(
    const std::vector<const ExtendedRelation*>& operands);

/// \brief Extended n-way join σ̃^Q_P (R1 ×̃ ... ×̃ Rn) over an
/// already-built flat product schema; with a null `predicate` it is the
/// pure n-way product (no selection, no threshold).
///
/// The result is definitionally the left-major (FROM-order) product
/// with memberships folded left-to-right via F_TM, then one extended
/// selection with the full predicate — and is bit-identical to that
/// definition for *any* `join_order` (a permutation of 0..n-1; the
/// identity when empty). Under columnar execution with a fully-bindable
/// predicate, the executor enumerates the combinations surviving the
/// predicate's definite equi edges (AnalyzeMultiJoinEdges) by pairwise
/// hash joins in `join_order` — building a table on each incoming
/// operand and probing with the current match set, cross-stepping when
/// no edge connects — then restores left-major order, splices the
/// output column image, and runs ordinary Select with the full
/// predicate. Since dropped combinations carry an exact (0,0) equi
/// factor (always removed under CWA_ER) and kept ones re-evaluate the
/// complete predicate, the order only decides intermediate sizes, never
/// the result. Row mode and non-bindable predicates take the
/// materialized reference path.
Result<ExtendedRelation> MultiwayJoinProduct(
    const std::vector<const ExtendedRelation*>& operands,
    const SchemaPtr& product_schema, const PredicatePtr& predicate,
    const MembershipThreshold& threshold,
    const std::vector<size_t>& join_order = {});

/// \brief Renames one attribute; useful before Product/Union when names
/// collide or differ across sources. Under columnar execution this is a
/// schema-only change: the output adopts the operand's column image
/// under the renamed schema without materializing any rows.
Result<ExtendedRelation> RenameAttribute(const ExtendedRelation& input,
                                         const std::string& from,
                                         const std::string& to);

/// \brief Combines two membership pairs under `rule` on the boolean frame
/// Ψ; exposed for the union implementation, the ablation benches, and
/// tests that cross-check the closed form against the generic engine.
Result<SupportPair> CombineMembership(const SupportPair& a,
                                      const SupportPair& b,
                                      CombinationRule rule);

}  // namespace evident

#endif  // EVIDENT_CORE_OPERATIONS_H_
