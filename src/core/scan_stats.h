#ifndef EVIDENT_CORE_SCAN_STATS_H_
#define EVIDENT_CORE_SCAN_STATS_H_

#include <cstdint>

namespace evident {

/// \brief Per-thread counters for zone-map partition pruning, reset per
/// query by the shell (or any caller that wants a fresh window). The
/// executors record how many partitions each pruned scan considered and
/// how many it skipped; the shell reports the totals after each query.
/// Thread-local so concurrent sessions never contend — but that also
/// means a reader only sees the scans its own thread executed. Morsel
/// workers never record (pruning decisions are made on the calling
/// thread before morsels are cut), so the session thread's view is
/// complete.
struct PartitionScanStats {
  uint64_t partitions_considered = 0;
  uint64_t partitions_pruned = 0;
};

inline PartitionScanStats& MutableScanStats() {
  thread_local PartitionScanStats stats;
  return stats;
}

inline void ResetScanStats() { MutableScanStats() = PartitionScanStats{}; }

inline PartitionScanStats CurrentScanStats() { return MutableScanStats(); }

inline void RecordPartitionScan(uint64_t considered, uint64_t pruned) {
  PartitionScanStats& stats = MutableScanStats();
  stats.partitions_considered += considered;
  stats.partitions_pruned += pruned;
}

}  // namespace evident

#endif  // EVIDENT_CORE_SCAN_STATS_H_
