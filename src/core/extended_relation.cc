#include "core/extended_relation.h"

#include <sstream>
#include <utility>

#include "core/column_store.h"

namespace evident {

namespace {

/// Reused per-thread encode buffer for the KeyVector-based probe API, so
/// FindByKey/ContainsKey allocate nothing in steady state.
std::string& EncodeScratch() {
  thread_local std::string scratch;
  return scratch;
}

void EncodeKeyVector(const KeyVector& key, std::string* out) {
  out->clear();
  for (const Value& v : key) v.AppendCanonicalKey(out);
}

}  // namespace

Status MakeDuplicateKeyError(const KeyVector& key,
                             const std::string& relation_name) {
  std::string message = "duplicate key";
  for (const Value& v : key) {
    message += " ";
    message += v.ToString();
  }
  message += " in relation '";
  message += relation_name;
  message += "'";
  return Status::AlreadyExists(std::move(message));
}

ExtendedRelation ExtendedRelation::AdoptColumns(ColumnStore store) {
  ExtendedRelation rel(store.name(), store.schema());
  rel.columns_ = std::make_shared<const ColumnStore>(std::move(store));
  rel.rows_built_ = false;
  rel.index_built_ = false;
  return rel;
}

ExtendedRelation ExtendedRelation::AdoptColumnsWithIndex(
    ColumnStore store, EncodedKeyIndex index) {
  ExtendedRelation rel = AdoptColumns(std::move(store));
  rel.key_index_ = std::move(index);
  rel.index_built_ = true;
  return rel;
}

size_t ExtendedRelation::size() const {
  return rows_built_ ? rows_.size() : columns_->rows();
}

void ExtendedRelation::MaterializeRows() const {
  if (rows_built_) return;
  ++rows_materialized_;
  const ColumnStore& store = *columns_;
  rows_.clear();
  rows_.reserve(store.rows());
  for (size_t r = 0; r < store.rows(); ++r) {
    rows_.push_back(store.MaterializeRow(r));
  }
  rows_built_ = true;
}

void ExtendedRelation::EnsureKeyIndex() const {
  if (index_built_) return;
  key_index_.Clear();
  const ColumnStore& store = *columns_;
  key_index_.Reserve(store.rows());
  // The store's cached encoded-key arena survives across queries for
  // catalog relations (their column image is shared), so the index build
  // re-encodes nothing on repeat probes.
  const ColumnStore::EncodedKeys& keys = store.encoded_keys();
  for (size_t r = 0; r < store.rows(); ++r) {
    // Adopted stores carry unique keys by construction (see
    // AdoptColumns); a duplicate here would be an operator bug, and
    // first-wins matches the insert-time index's behaviour.
    key_index_.Insert(keys.key(r));
  }
  index_built_ = true;
}

void ExtendedRelation::PrepareForInsert() {
  MaterializeRows();
  EnsureKeyIndex();
}

Status ExtendedRelation::ValidateTuple(const ExtendedTuple& tuple,
                                       bool require_positive_sn) const {
  if (schema_ == nullptr) {
    return Status::Internal("relation '" + name_ + "' has no schema");
  }
  if (tuple.cells.size() != schema_->size()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(tuple.cells.size()) +
        " cells, schema " + schema_->ToString() + " expects " +
        std::to_string(schema_->size()));
  }
  for (size_t i = 0; i < tuple.cells.size(); ++i) {
    const AttributeDef& attr = schema_->attribute(i);
    const Cell& cell = tuple.cells[i];
    switch (attr.kind) {
      case AttributeKind::kKey:
      case AttributeKind::kDefinite: {
        if (!CellIsValue(cell)) {
          // A definite evidence set is acceptable in spirit, but the model
          // stores definite attributes as plain Values for clarity.
          return Status::InvalidArgument(
              "attribute '" + attr.name + "' is " +
              AttributeKindToString(attr.kind) +
              " and must hold a definite value, not an evidence set");
        }
        if (attr.domain != nullptr &&
            !attr.domain->Contains(std::get<Value>(cell))) {
          return Status::OutOfRange("value " +
                                    std::get<Value>(cell).ToString() +
                                    " outside domain of '" + attr.name + "'");
        }
        break;
      }
      case AttributeKind::kUncertain: {
        if (CellIsValue(cell)) {
          return Status::InvalidArgument(
              "attribute '" + attr.name +
              "' is uncertain and must hold an evidence set");
        }
        const EvidenceSet& es = std::get<EvidenceSet>(cell);
        if (!SameDomain(es.domain(), attr.domain)) {
          return Status::Incompatible(
              "evidence set for '" + attr.name + "' is over domain '" +
              es.domain()->name() + "', schema declares '" +
              attr.domain->name() + "'");
        }
        EVIDENT_RETURN_NOT_OK(es.mass().Validate());
        break;
      }
    }
  }
  EVIDENT_RETURN_NOT_OK(tuple.membership.Validate());
  if (require_positive_sn && !tuple.membership.HasPositiveSupport()) {
    return Status::InvalidArgument(
        "CWA_ER violation: stored tuples must have sn > 0, got " +
        tuple.membership.ToString());
  }
  return Status::OK();
}

Status ExtendedRelation::InsertImpl(ExtendedTuple tuple,
                                    bool require_positive_sn, bool validate) {
  if (validate) {
    EVIDENT_RETURN_NOT_OK(ValidateTuple(tuple, require_positive_sn));
  }
  return InsertTrusted(std::move(tuple));
}

Status ExtendedRelation::Insert(ExtendedTuple tuple) {
  return InsertImpl(std::move(tuple), /*require_positive_sn=*/true,
                    /*validate=*/true);
}

Status ExtendedRelation::InsertUnchecked(ExtendedTuple tuple) {
  return InsertImpl(std::move(tuple), /*require_positive_sn=*/false,
                    /*validate=*/true);
}

Status ExtendedRelation::InsertTrusted(ExtendedTuple tuple) {
  PrepareForInsert();
  std::string& encoded = EncodeScratch();
  EncodeKeyOf(tuple, &encoded);
  if (key_index_.Insert(encoded) != EncodedKeyIndex::kNoRow) {
    return MakeDuplicateKeyError(KeyOf(tuple), name_);
  }
  rows_.push_back(std::move(tuple));
  columns_.reset();
  return Status::OK();
}

KeyVector ExtendedRelation::KeyOf(const ExtendedTuple& tuple) const {
  KeyVector key;
  key.reserve(schema_->key_indices().size());
  for (size_t i : schema_->key_indices()) {
    key.push_back(std::get<Value>(tuple.cells[i]));
  }
  return key;
}

void ExtendedRelation::EncodeKeyOf(const ExtendedTuple& tuple,
                                   std::string* out) const {
  out->clear();
  for (size_t i : schema_->key_indices()) {
    std::get<Value>(tuple.cells[i]).AppendCanonicalKey(out);
  }
}

Result<size_t> ExtendedRelation::FindByKey(const KeyVector& key) const {
  std::string& encoded = EncodeScratch();
  EncodeKeyVector(key, &encoded);
  return FindByEncodedKey(encoded);
}

Result<size_t> ExtendedRelation::FindByEncodedKey(
    std::string_view key) const {
  EnsureKeyIndex();
  const uint32_t row = key_index_.Find(key);
  if (row == EncodedKeyIndex::kNoRow) {
    return Status::NotFound("no tuple with the given key in relation '" +
                            name_ + "'");
  }
  return static_cast<size_t>(row);
}

bool ExtendedRelation::ContainsKey(const KeyVector& key) const {
  std::string& encoded = EncodeScratch();
  EncodeKeyVector(key, &encoded);
  return ContainsEncodedKey(encoded);
}

const ColumnStore& ExtendedRelation::columns() const {
  if (columns_ == nullptr) {
    columns_ = std::make_shared<const ColumnStore>(
        ColumnStore::FromRelation(*this));
  }
  return *columns_;
}

Status ExtendedRelation::ValidateInvariants() const {
  for (const ExtendedTuple& t : rows()) {
    EVIDENT_RETURN_NOT_OK(ValidateTuple(t, /*require_positive_sn=*/true));
  }
  return Status::OK();
}

bool ExtendedRelation::ApproxEquals(const ExtendedRelation& other,
                                    double eps) const {
  if (schema_ == nullptr || other.schema_ == nullptr) {
    return schema_ == other.schema_;
  }
  if (!schema_->Equals(*other.schema_)) return false;
  if (size() != other.size()) return false;
  for (const ExtendedTuple& t : rows()) {
    auto found = other.FindByKey(KeyOf(t));
    if (!found.ok()) return false;
    const ExtendedTuple& o = other.row(*found);
    if (!t.membership.ApproxEquals(o.membership, eps)) return false;
    for (size_t i = 0; i < t.cells.size(); ++i) {
      if (!CellApproxEquals(t.cells[i], o.cells[i], eps)) return false;
    }
  }
  return true;
}

std::string ExtendedRelation::ToString(int mass_decimals) const {
  std::ostringstream os;
  os << name_ << " " << (schema_ ? schema_->ToString() : "(null schema)")
     << " [" << size() << " tuples]\n";
  for (const ExtendedTuple& t : rows()) {
    os << "  " << t.ToString(mass_decimals) << "\n";
  }
  return os.str();
}

}  // namespace evident
