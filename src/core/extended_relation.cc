#include "core/extended_relation.h"

#include <sstream>

namespace evident {

Status ExtendedRelation::ValidateTuple(const ExtendedTuple& tuple,
                                       bool require_positive_sn) const {
  if (schema_ == nullptr) {
    return Status::Internal("relation '" + name_ + "' has no schema");
  }
  if (tuple.cells.size() != schema_->size()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(tuple.cells.size()) +
        " cells, schema " + schema_->ToString() + " expects " +
        std::to_string(schema_->size()));
  }
  for (size_t i = 0; i < tuple.cells.size(); ++i) {
    const AttributeDef& attr = schema_->attribute(i);
    const Cell& cell = tuple.cells[i];
    switch (attr.kind) {
      case AttributeKind::kKey:
      case AttributeKind::kDefinite: {
        if (!CellIsValue(cell)) {
          // A definite evidence set is acceptable in spirit, but the model
          // stores definite attributes as plain Values for clarity.
          return Status::InvalidArgument(
              "attribute '" + attr.name + "' is " +
              AttributeKindToString(attr.kind) +
              " and must hold a definite value, not an evidence set");
        }
        if (attr.domain != nullptr &&
            !attr.domain->Contains(std::get<Value>(cell))) {
          return Status::OutOfRange("value " +
                                    std::get<Value>(cell).ToString() +
                                    " outside domain of '" + attr.name + "'");
        }
        break;
      }
      case AttributeKind::kUncertain: {
        if (CellIsValue(cell)) {
          return Status::InvalidArgument(
              "attribute '" + attr.name +
              "' is uncertain and must hold an evidence set");
        }
        const EvidenceSet& es = std::get<EvidenceSet>(cell);
        if (!SameDomain(es.domain(), attr.domain)) {
          return Status::Incompatible(
              "evidence set for '" + attr.name + "' is over domain '" +
              es.domain()->name() + "', schema declares '" +
              attr.domain->name() + "'");
        }
        EVIDENT_RETURN_NOT_OK(es.mass().Validate());
        break;
      }
    }
  }
  EVIDENT_RETURN_NOT_OK(tuple.membership.Validate());
  if (require_positive_sn && !tuple.membership.HasPositiveSupport()) {
    return Status::InvalidArgument(
        "CWA_ER violation: stored tuples must have sn > 0, got " +
        tuple.membership.ToString());
  }
  return Status::OK();
}

Status ExtendedRelation::InsertImpl(ExtendedTuple tuple,
                                    bool require_positive_sn, bool validate) {
  if (validate) {
    EVIDENT_RETURN_NOT_OK(ValidateTuple(tuple, require_positive_sn));
  }
  KeyVector key = KeyOf(tuple);
  return InsertTrusted(std::move(tuple), std::move(key));
}

Status ExtendedRelation::Insert(ExtendedTuple tuple) {
  return InsertImpl(std::move(tuple), /*require_positive_sn=*/true,
                    /*validate=*/true);
}

Status ExtendedRelation::InsertUnchecked(ExtendedTuple tuple) {
  return InsertImpl(std::move(tuple), /*require_positive_sn=*/false,
                    /*validate=*/true);
}

Status ExtendedRelation::InsertTrusted(ExtendedTuple tuple) {
  KeyVector key = KeyOf(tuple);
  return InsertTrusted(std::move(tuple), std::move(key));
}

Status ExtendedRelation::InsertTrusted(ExtendedTuple tuple, KeyVector key) {
  auto [it, inserted] = key_index_.try_emplace(std::move(key), rows_.size());
  if (!inserted) {
    std::string key_text;
    for (const Value& v : it->first) key_text += " " + v.ToString();
    return Status::AlreadyExists("duplicate key" + key_text +
                                 " in relation '" + name_ + "'");
  }
  rows_.push_back(std::move(tuple));
  return Status::OK();
}

KeyVector ExtendedRelation::KeyOf(const ExtendedTuple& tuple) const {
  KeyVector key;
  key.reserve(schema_->key_indices().size());
  for (size_t i : schema_->key_indices()) {
    key.push_back(std::get<Value>(tuple.cells[i]));
  }
  return key;
}

Result<size_t> ExtendedRelation::FindByKey(const KeyVector& key) const {
  auto it = key_index_.find(key);
  if (it == key_index_.end()) {
    return Status::NotFound("no tuple with the given key in relation '" +
                            name_ + "'");
  }
  return it->second;
}

bool ExtendedRelation::ContainsKey(const KeyVector& key) const {
  return key_index_.count(key) > 0;
}

Status ExtendedRelation::ValidateInvariants() const {
  for (const ExtendedTuple& t : rows_) {
    EVIDENT_RETURN_NOT_OK(ValidateTuple(t, /*require_positive_sn=*/true));
  }
  return Status::OK();
}

bool ExtendedRelation::ApproxEquals(const ExtendedRelation& other,
                                    double eps) const {
  if (schema_ == nullptr || other.schema_ == nullptr) {
    return schema_ == other.schema_;
  }
  if (!schema_->Equals(*other.schema_)) return false;
  if (rows_.size() != other.rows_.size()) return false;
  for (const ExtendedTuple& t : rows_) {
    auto found = other.FindByKey(KeyOf(t));
    if (!found.ok()) return false;
    const ExtendedTuple& o = other.rows_[*found];
    if (!t.membership.ApproxEquals(o.membership, eps)) return false;
    for (size_t i = 0; i < t.cells.size(); ++i) {
      if (!CellApproxEquals(t.cells[i], o.cells[i], eps)) return false;
    }
  }
  return true;
}

std::string ExtendedRelation::ToString(int mass_decimals) const {
  std::ostringstream os;
  os << name_ << " " << (schema_ ? schema_->ToString() : "(null schema)")
     << " [" << rows_.size() << " tuples]\n";
  for (const ExtendedTuple& t : rows_) {
    os << "  " << t.ToString(mass_decimals) << "\n";
  }
  return os.str();
}

}  // namespace evident
