#ifndef EVIDENT_CORE_SUPPORT_PAIR_H_
#define EVIDENT_CORE_SUPPORT_PAIR_H_

#include <string>

#include "common/result.h"

namespace evident {

/// \brief A pair (sn, sp) of necessary and possible support over the
/// boolean frame Ψ = {true, false}.
///
/// Used both as the tuple membership attribute of extended relations and
/// as the support level a tuple gives to a selection condition (the
/// output of F_SS). In evidence terms, sn = m({true}), sp = 1 −
/// m({false}), and sp − sn = m(Ψ) is the uncommitted (ignorant) mass.
/// Valid pairs satisfy 0 ≤ sn ≤ sp ≤ 1.
struct SupportPair {
  double sn = 0.0;
  double sp = 1.0;

  SupportPair() = default;
  SupportPair(double sn_in, double sp_in) : sn(sn_in), sp(sp_in) {}

  /// \brief Full certainty of membership: (1,1).
  static SupportPair Certain() { return {1.0, 1.0}; }
  /// \brief Full certainty of non-membership: (0,0).
  static SupportPair Impossible() { return {0.0, 0.0}; }
  /// \brief Complete ignorance: (0,1).
  static SupportPair Unknown() { return {0.0, 1.0}; }

  /// \brief Checks 0 ≤ sn ≤ sp ≤ 1 (within kMassEpsilon).
  Status Validate() const;

  /// \brief Mass on {true}.
  double TrueMass() const { return sn; }
  /// \brief Mass on {false}.
  double FalseMass() const { return 1.0 - sp; }
  /// \brief Mass on Ψ (ignorance).
  double UnknownMass() const { return sp - sn; }

  /// \brief True when there is some positive evidence of membership
  /// (the CWA_ER storage criterion).
  bool HasPositiveSupport() const { return sn > 0.0; }

  /// \brief The paper's F_TM: treats the two pairs as independent events
  /// and multiplies component-wise — used to derive result-tuple
  /// membership in selection, cartesian product and join.
  SupportPair Multiply(const SupportPair& other) const {
    return {sn * other.sn, sp * other.sp};
  }

  /// \brief Dempster combination on the boolean frame (closed form) —
  /// used by extended union to merge membership evidence from two
  /// sources. Fails with TotalConflict when one source is certain of
  /// membership and the other certain of non-membership.
  Result<SupportPair> CombineDempster(const SupportPair& other) const;

  bool ApproxEquals(const SupportPair& other, double eps = 1e-9) const;

  /// \brief "(0.5,0.75)" with trailing zeros trimmed.
  std::string ToString(int decimals = 6) const;
};

}  // namespace evident

#endif  // EVIDENT_CORE_SUPPORT_PAIR_H_
