#include "core/column_store.h"

#include <cstdlib>
#include <limits>
#include <unordered_set>
#include <utility>

#include "core/scan_stats.h"

namespace evident {

Result<std::vector<uint8_t>> PruneAndVerifyPartitions(
    const ColumnStore& store,
    const std::function<bool(const ColumnStore::PartitionZone&)>& refutes) {
  const std::vector<ColumnStore::PartitionZone>& parts = store.partitions();
  if (parts.empty()) {
    EVIDENT_RETURN_NOT_OK(store.EnsureAllVerified());
    return std::vector<uint8_t>{};
  }
  std::vector<uint8_t> row_pruned;
  size_t pruned = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    if (refutes(parts[p])) {
      if (row_pruned.empty()) row_pruned.assign(store.rows(), 0);
      for (size_t r = parts[p].begin_row; r < parts[p].end_row; ++r) {
        row_pruned[r] = 1;
      }
      ++pruned;
    } else {
      EVIDENT_RETURN_NOT_OK(store.EnsurePartitionVerified(p));
    }
  }
  RecordPartitionScan(parts.size(), pruned);
  return row_pruned;
}

std::vector<std::pair<size_t, size_t>> UnprunedRowRuns(
    const ColumnStore& store, const std::vector<uint8_t>& row_pruned) {
  std::vector<std::pair<size_t, size_t>> runs;
  if (row_pruned.empty()) {
    if (store.rows() > 0) runs.emplace_back(0, store.rows());
    return runs;
  }
  // A non-empty bitmap only ever comes from PruneAndVerifyPartitions,
  // which marks whole partitions — one probe at each partition's first
  // row recovers the decision without rescanning the bitmap.
  for (const ColumnStore::PartitionZone& part : store.partitions()) {
    if (part.begin_row == part.end_row) continue;
    if (row_pruned[part.begin_row]) continue;
    if (!runs.empty() && runs.back().second == part.begin_row) {
      runs.back().second = part.end_row;
    } else {
      runs.emplace_back(part.begin_row, part.end_row);
    }
  }
  return runs;
}

ColumnStore ColumnStore::FromRelation(const ExtendedRelation& rel) {
  ColumnStore store;
  store.schema_ = rel.schema();
  store.name_ = rel.name();
  const size_t rows = rel.size();
  const size_t attrs = store.schema_ != nullptr ? store.schema_->size() : 0;
  store.kinds_.resize(attrs);
  store.slots_.resize(attrs);

  for (size_t a = 0; a < attrs; ++a) {
    const AttributeDef& attr = store.schema_->attribute(a);
    if (attr.kind != AttributeKind::kUncertain) {
      store.kinds_[a] = ColumnKind::kValue;
      store.slots_[a] = static_cast<uint32_t>(store.value_columns_.size());
      ValueColumn col;
      col.values.reserve(rows);
      for (size_t r = 0; r < rows; ++r) {
        col.values.push_back(std::get<Value>(rel.row(r).cells[a]));
      }
      store.value_columns_.push_back(std::move(col));
      continue;
    }
    if (attr.domain->size() > ValueSet::kMaxInlineUniverse) {
      store.kinds_[a] = ColumnKind::kBoxed;
      store.slots_[a] = static_cast<uint32_t>(store.boxed_columns_.size());
      BoxedColumn col;
      col.sets.reserve(rows);
      for (size_t r = 0; r < rows; ++r) {
        col.sets.push_back(std::get<EvidenceSet>(rel.row(r).cells[a]));
      }
      store.boxed_columns_.push_back(std::move(col));
      continue;
    }
    store.kinds_[a] = ColumnKind::kEvidence;
    store.slots_[a] = static_cast<uint32_t>(store.evidence_columns_.size());
    EvidenceColumn col;
    col.domain = attr.domain;
    col.universe = attr.domain->size();
    size_t total_focals = 0;
    for (size_t r = 0; r < rows; ++r) {
      total_focals +=
          std::get<EvidenceSet>(rel.row(r).cells[a]).mass().FocalCount();
    }
    // Spans are addressed with 32-bit offsets; a column with 2^32 focal
    // elements (> 64 GiB packed) exhausts memory long before this, so
    // the limit fails loudly instead of wrapping offsets silently.
    if (total_focals > std::numeric_limits<uint32_t>::max()) std::abort();
    col.words.reserve(total_focals);
    col.masses.reserve(total_focals);
    col.offsets.reserve(rows + 1);
    col.offsets.push_back(0);
    for (size_t r = 0; r < rows; ++r) {
      const MassFunction& mass =
          std::get<EvidenceSet>(rel.row(r).cells[a]).mass();
      for (const auto& [set, m] : mass.focals()) {
        col.words.push_back(set.InlineWord());
        col.masses.push_back(m);
      }
      col.offsets.push_back(static_cast<uint32_t>(col.words.size()));
    }
    store.evidence_columns_.push_back(std::move(col));
  }

  store.sn_.reserve(rows);
  store.sp_.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    store.sn_.push_back(rel.row(r).membership.sn);
    store.sp_.push_back(rel.row(r).membership.sp);
  }
  return store;
}

ColumnStore ColumnStore::EmptyLike(SchemaPtr schema, std::string name) {
  ColumnStore store;
  store.schema_ = std::move(schema);
  store.name_ = std::move(name);
  const size_t attrs = store.schema_ != nullptr ? store.schema_->size() : 0;
  store.kinds_.resize(attrs);
  store.slots_.resize(attrs);
  for (size_t a = 0; a < attrs; ++a) {
    const AttributeDef& attr = store.schema_->attribute(a);
    if (attr.kind != AttributeKind::kUncertain) {
      store.kinds_[a] = ColumnKind::kValue;
      store.slots_[a] = static_cast<uint32_t>(store.value_columns_.size());
      store.value_columns_.emplace_back();
    } else if (attr.domain->size() > ValueSet::kMaxInlineUniverse) {
      store.kinds_[a] = ColumnKind::kBoxed;
      store.slots_[a] = static_cast<uint32_t>(store.boxed_columns_.size());
      store.boxed_columns_.emplace_back();
    } else {
      store.kinds_[a] = ColumnKind::kEvidence;
      store.slots_[a] = static_cast<uint32_t>(store.evidence_columns_.size());
      EvidenceColumn col;
      col.domain = attr.domain;
      col.universe = attr.domain->size();
      col.offsets.push_back(0);
      store.evidence_columns_.push_back(std::move(col));
    }
  }
  return store;
}

ColumnStore ColumnStore::WithSchema(const ColumnStore& src, SchemaPtr schema,
                                    std::string name) {
  ColumnStore store;
  store.schema_ = std::move(schema);
  store.name_ = std::move(name);
  store.kinds_ = src.kinds_;
  store.slots_ = src.slots_;
  store.value_columns_ = src.value_columns_;
  store.evidence_columns_ = src.evidence_columns_;
  store.boxed_columns_ = src.boxed_columns_;
  store.sn_ = src.sn_;
  store.sp_ = src.sp_;
  // A schema relabel keeps the column data, so the profile, the
  // partition zones and any pending deferred verification carry over
  // (the verifier reads the store it is handed, and the relabeled
  // columns are bit-identical).
  store.statistics_ = src.statistics_;
  store.statistics_built_ = src.statistics_built_;
  store.partitions_ = src.partitions_;
  store.deferred_ = src.deferred_;
  return store;
}

Status ColumnStore::EnsurePartitionVerified(size_t partition) const {
  if (deferred_ == nullptr) return Status::OK();
  DeferredVerify& d = *deferred_;
  std::lock_guard<std::mutex> lock(d.mu);
  // The first failure is sticky: once any partition fails, the image is
  // considered corrupt as a whole and every later touch reports the
  // same (first) error, matching what an eager load would have said.
  if (d.failed) return d.failure;
  if (partition >= d.done.size() || d.done[partition]) return Status::OK();
  Status status = d.verifier(*this, partition);
  if (!status.ok()) {
    d.failed = true;
    d.failure = status;
    return status;
  }
  d.done[partition] = 1;
  return Status::OK();
}

Status ColumnStore::EnsureAllVerified() const {
  if (deferred_ == nullptr) return Status::OK();
  const size_t count = deferred_->done.size();
  for (size_t p = 0; p < count; ++p) {
    EVIDENT_RETURN_NOT_OK(EnsurePartitionVerified(p));
  }
  return Status::OK();
}

ColumnStore ColumnStore::SpliceRows(
    const ColumnStore& src, SchemaPtr schema, std::string name,
    const std::vector<size_t>& attr_indices, const std::vector<uint32_t>& keep,
    const std::vector<SupportPair>& memberships) {
  ColumnStore out = EmptyLike(std::move(schema), std::move(name));
  out.ReserveRows(keep.size());
  const size_t attrs = out.schema_ != nullptr ? out.schema_->size() : 0;
  for (size_t a = 0; a < attrs; ++a) {
    const size_t src_attr = attr_indices[a];
    switch (src.kind(src_attr)) {
      case ColumnKind::kValue: {
        const std::vector<Value>& from = src.value_column(src_attr).values;
        std::vector<Value>& to = out.value_column_mut(a).values;
        to.reserve(keep.size());
        for (uint32_t i : keep) to.push_back(from[i]);
        break;
      }
      case ColumnKind::kEvidence: {
        const EvidenceColumn& from = src.evidence_column(src_attr);
        EvidenceColumn& to = out.evidence_column_mut(a);
        to.offsets.reserve(keep.size() + 1);
        for (uint32_t i : keep) to.AppendRowFrom(from, i);
        break;
      }
      case ColumnKind::kBoxed: {
        const std::vector<EvidenceSet>& from = src.boxed_column(src_attr).sets;
        std::vector<EvidenceSet>& to = out.boxed_column_mut(a).sets;
        to.reserve(keep.size());
        for (uint32_t i : keep) to.push_back(from[i]);
        break;
      }
    }
  }
  for (const SupportPair& membership : memberships) {
    out.AppendMembership(membership);
  }
  return out;
}

void ColumnStore::EncodeKeyOfRow(size_t row, std::string* out) const {
  out->clear();
  for (size_t a : schema_->key_indices()) {
    value_columns_[slots_[a]].values[row].AppendCanonicalKey(out);
  }
}

const ColumnStore::EncodedKeys& ColumnStore::encoded_keys() const {
  if (encoded_keys_built_) return encoded_keys_;
  const size_t n = rows();
  encoded_keys_.arena.clear();
  encoded_keys_.offsets.clear();
  encoded_keys_.offsets.reserve(n + 1);
  encoded_keys_.offsets.push_back(0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t a : schema_->key_indices()) {
      value_columns_[slots_[a]].values[r].AppendCanonicalKey(
          &encoded_keys_.arena);
    }
    // The arena is offset-addressed with 32 bits, like the key index's;
    // a 4 GiB key arena exhausts memory long before this, so the limit
    // fails loudly instead of wrapping offsets silently.
    if (encoded_keys_.arena.size() > std::numeric_limits<uint32_t>::max()) {
      std::abort();
    }
    encoded_keys_.offsets.push_back(
        static_cast<uint32_t>(encoded_keys_.arena.size()));
  }
  encoded_keys_built_ = true;
  return encoded_keys_;
}

const TableStatistics& ColumnStore::statistics() const {
  if (statistics_built_) return statistics_;
  const size_t n = rows();
  const size_t attrs = schema_ != nullptr ? schema_->size() : 0;
  statistics_.row_count = n;
  statistics_.attributes.assign(attrs, {});

  const bool sole_key =
      schema_ != nullptr && schema_->key_indices().size() == 1;
  std::string encoded;
  for (size_t a = 0; a < attrs; ++a) {
    TableStatistics::Attribute& stat = statistics_.attributes[a];
    if (kinds_[a] != ColumnKind::kValue) continue;  // uncertain: unknown
    if (sole_key && a == schema_->key_indices()[0]) {
      // A single-attribute key is unique by the relation invariant.
      stat.distinct = n;
      stat.exact = true;
      continue;
    }
    const std::vector<Value>& values = value_columns_[slots_[a]].values;
    // Canonical key encodings make 1 and 1.0 count as one value, the
    // same identity the equality kernels use.
    std::unordered_set<std::string> seen;
    if (n <= kStatisticsExactRows) {
      seen.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        encoded.clear();
        values[r].AppendCanonicalKey(&encoded);
        seen.insert(encoded);
      }
      stat.distinct = seen.size();
      stat.exact = true;
      continue;
    }
    // Deterministic stride sample: the same store always yields the same
    // estimate, so plans (and their EXPLAIN goldens) are reproducible.
    const size_t stride = n / kStatisticsExactRows;
    size_t sampled = 0;
    seen.reserve(kStatisticsExactRows);
    for (size_t r = 0; r < n; r += stride, ++sampled) {
      encoded.clear();
      values[r].AppendCanonicalKey(&encoded);
      seen.insert(encoded);
    }
    if (seen.size() == sampled) {
      // Every sample distinct: the column is plausibly unique.
      stat.distinct = n;
    } else {
      const uint64_t scaled =
          static_cast<uint64_t>(seen.size()) * n / sampled;
      stat.distinct = scaled > n ? n : (scaled == 0 ? 1 : scaled);
    }
    stat.exact = false;
  }

  statistics_.sn_histogram.assign(TableStatistics::kHistogramBins, 0);
  statistics_.sp_histogram.assign(TableStatistics::kHistogramBins, 0);
  for (size_t r = 0; r < n; ++r) {
    ++statistics_.sn_histogram[TableStatistics::BinOf(sn_[r])];
    ++statistics_.sp_histogram[TableStatistics::BinOf(sp_[r])];
  }
  statistics_built_ = true;
  return statistics_;
}

ExtendedTuple ColumnStore::MaterializeRow(size_t row) const {
  ExtendedTuple t;
  const size_t attrs = schema_ != nullptr ? schema_->size() : 0;
  t.cells.reserve(attrs);
  for (size_t a = 0; a < attrs; ++a) {
    switch (kinds_[a]) {
      case ColumnKind::kValue:
        t.cells.emplace_back(value_column(a).values[row]);
        break;
      case ColumnKind::kEvidence:
        t.cells.emplace_back(MaterializeEvidence(a, row));
        break;
      case ColumnKind::kBoxed:
        t.cells.emplace_back(boxed_column(a).sets[row]);
        break;
    }
  }
  t.membership = membership(row);
  return t;
}

EvidenceSet ColumnStore::MaterializeEvidence(size_t attr, size_t row) const {
  // Wide frames live in boxed columns; indexing evidence_columns_ with
  // their slot would read some other attribute's packed data.
  if (kinds_[attr] == ColumnKind::kBoxed) return boxed_column(attr).sets[row];
  const EvidenceColumn& col = evidence_columns_[slots_[attr]];
  MassFunction mass(col.universe);
  const uint32_t begin = col.offsets[row];
  mass.AssignSortedInlineWords(col.words.data() + begin,
                               col.masses.data() + begin,
                               col.offsets[row + 1] - begin);
  return EvidenceSet::MakeTrusted(col.domain, std::move(mass));
}

Result<ExtendedRelation> ColumnStore::ToRelation() const {
  ExtendedRelation out(name_, schema_);
  const size_t n = rows();
  out.Reserve(n);
  for (size_t r = 0; r < n; ++r) {
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(MaterializeRow(r)));
  }
  return out;
}

}  // namespace evident
