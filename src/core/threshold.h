#ifndef EVIDENT_CORE_THRESHOLD_H_
#define EVIDENT_CORE_THRESHOLD_H_

#include <string>
#include <vector>

#include "core/support_pair.h"

namespace evident {

/// \brief The membership threshold condition Q of extended selection
/// (§3.1.3): a constraint on the *revised* tuple membership value that
/// decides whether a result tuple is kept.
///
/// A threshold is a conjunction of atomic comparisons on sn or sp. To be
/// consistent with CWA_ER the paper requires the result to satisfy
/// sn > 0; Select enforces that implicitly in addition to Q, so the
/// default (empty) threshold means exactly "sn > 0".
class MembershipThreshold {
 public:
  enum class Field { kSn, kSp };
  enum class Cmp { kGt, kGe, kEq, kLt, kLe };

  struct Atom {
    Field field;
    Cmp cmp;
    double bound;

    bool Accepts(const SupportPair& m) const;
    std::string ToString() const;
  };

  /// \brief The empty threshold (only the implicit sn > 0 applies).
  MembershipThreshold() = default;

  /// \name Common thresholds.
  /// @{
  static MembershipThreshold SnGreater(double bound);
  static MembershipThreshold SnAtLeast(double bound);
  static MembershipThreshold SnEquals(double bound);
  static MembershipThreshold SpGreater(double bound);
  static MembershipThreshold SpAtLeast(double bound);
  /// @}

  /// \brief Conjoins another atom (builder style).
  MembershipThreshold& AndAlso(Field field, Cmp cmp, double bound);

  const std::vector<Atom>& atoms() const { return atoms_; }

  /// \brief True when all atoms accept `m` (vacuously true if empty).
  bool Accepts(const SupportPair& m) const;

  /// \brief "sn > 0.5 and sp >= 0.9"; "true" when empty.
  std::string ToString() const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace evident

#endif  // EVIDENT_CORE_THRESHOLD_H_
