#include "core/tuple.h"

#include <sstream>

namespace evident {

std::string CellToString(const Cell& cell, int mass_decimals) {
  if (CellIsValue(cell)) return std::get<Value>(cell).ToString();
  return std::get<EvidenceSet>(cell).ToString(mass_decimals);
}

bool CellApproxEquals(const Cell& a, const Cell& b, double eps) {
  if (a.index() != b.index()) return false;
  if (CellIsValue(a)) return std::get<Value>(a) == std::get<Value>(b);
  return std::get<EvidenceSet>(a).ApproxEquals(std::get<EvidenceSet>(b), eps);
}

std::string ExtendedTuple::ToString(int mass_decimals) const {
  std::ostringstream os;
  os << "<";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) os << " | ";
    os << CellToString(cells[i], mass_decimals);
  }
  os << " | " << membership.ToString(mass_decimals) << ">";
  return os.str();
}

}  // namespace evident
