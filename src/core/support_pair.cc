#include "core/support_pair.h"

#include "common/math_util.h"
#include "common/str_util.h"

namespace evident {

Status SupportPair::Validate() const {
  if (sn < -kMassEpsilon || sp > 1.0 + kMassEpsilon ||
      sn > sp + kMassEpsilon) {
    return Status::OutOfRange("support pair (" + std::to_string(sn) + "," +
                              std::to_string(sp) +
                              ") violates 0 <= sn <= sp <= 1");
  }
  return Status::OK();
}

Result<SupportPair> SupportPair::CombineDempster(
    const SupportPair& other) const {
  // Boolean-frame masses for both operands.
  const double t1 = TrueMass();
  const double f1 = FalseMass();
  const double u1 = UnknownMass();
  const double t2 = other.TrueMass();
  const double f2 = other.FalseMass();
  const double u2 = other.UnknownMass();
  const double kappa = t1 * f2 + f1 * t2;
  if (kappa >= 1.0 - kMassEpsilon) {
    return Status::TotalConflict(
        "membership evidence is totally conflicting: one source is certain "
        "the tuple exists, the other is certain it does not");
  }
  const double norm = 1.0 - kappa;
  const double t = (t1 * t2 + t1 * u2 + u1 * t2) / norm;
  const double f = (f1 * f2 + f1 * u2 + u1 * f2) / norm;
  return SupportPair{ClampUnit(t), ClampUnit(1.0 - f)};
}

bool SupportPair::ApproxEquals(const SupportPair& other, double eps) const {
  return ApproxEqual(sn, other.sn, eps) && ApproxEqual(sp, other.sp, eps);
}

std::string SupportPair::ToString(int decimals) const {
  return "(" + FormatMass(sn, decimals) + "," + FormatMass(sp, decimals) + ")";
}

}  // namespace evident
