#include "core/operations.h"

#include <unordered_set>

#include "common/math_util.h"

namespace evident {

namespace {

std::string KeyToString(const KeyVector& key) {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i) out += ",";
    out += key[i].ToString();
  }
  return out;
}

}  // namespace

Result<ExtendedRelation> Select(const ExtendedRelation& input,
                                const PredicatePtr& predicate,
                                const MembershipThreshold& threshold) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null selection predicate");
  }
  ExtendedRelation out("select(" + input.name() + ")", input.schema());
  out.Reserve(input.size());
  for (const ExtendedTuple& r : input.rows()) {
    EVIDENT_ASSIGN_OR_RETURN(SupportPair support,
                             predicate->Evaluate(r, *input.schema()));
    // F_TM: predicate satisfaction and original membership are treated as
    // independent events (Figure 3).
    const SupportPair revised = r.membership.Multiply(support);
    if (!revised.HasPositiveSupport()) continue;  // CWA_ER consistency.
    if (!threshold.Accepts(revised)) continue;
    // Cells pass through unchanged and were validated on insertion into
    // `input`; only the membership is revised (and stays a valid pair:
    // the component-wise product preserves sn <= sp).
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(ExtendedTuple(r.cells, revised)));
  }
  return out;
}

Result<SupportPair> CombineMembership(const SupportPair& a,
                                      const SupportPair& b,
                                      CombinationRule rule) {
  // All four rules have closed forms on the boolean frame Ψ =
  // {true, false}; no mass function is ever materialized. Cross-checked
  // against the generic ds/combination engine by the operations tests.
  const double t1 = a.TrueMass(), f1 = a.FalseMass(), u1 = a.UnknownMass();
  const double t2 = b.TrueMass(), f2 = b.FalseMass(), u2 = b.UnknownMass();
  switch (rule) {
    case CombinationRule::kDempster:
      return a.CombineDempster(b);
    case CombinationRule::kTBM: {
      // The caller-facing support pair cannot carry empty-set mass, so
      // the conjunctive result is renormalized — which is exactly
      // Dempster's rule, including the total-conflict failure.
      return a.CombineDempster(b);
    }
    case CombinationRule::kYager: {
      // Conflict becomes ignorance: m(Ψ) = u1·u2 + kappa.
      const double t = t1 * t2 + t1 * u2 + u1 * t2;
      const double f = f1 * f2 + f1 * u2 + u1 * f2;
      return SupportPair{ClampUnit(t), ClampUnit(1.0 - f)};
    }
    case CombinationRule::kMixing: {
      const double t = 0.5 * (t1 + t2);
      const double f = 0.5 * (f1 + f2);
      return SupportPair{ClampUnit(t), ClampUnit(1.0 - f)};
    }
  }
  return Status::InvalidArgument("unknown combination rule");
}

Result<ExtendedRelation> Union(const ExtendedRelation& left,
                               const ExtendedRelation& right,
                               const UnionOptions& options) {
  if (left.schema() == nullptr || right.schema() == nullptr) {
    return Status::InvalidArgument("union of relations without schemas");
  }
  if (!left.schema()->UnionCompatibleWith(*right.schema())) {
    return Status::Incompatible(
        "relations are not union-compatible: " + left.schema()->ToString() +
        " vs " + right.schema()->ToString());
  }
  ExtendedRelation out(left.name() + " u " + right.name(), left.schema());
  out.Reserve(left.size() + right.size());
  std::vector<bool> matched_right(right.size(), false);

  for (const ExtendedTuple& r : left.rows()) {
    KeyVector key = left.KeyOf(r);
    auto found = right.FindByKey(key);
    if (!found.ok()) {
      // The other source is totally ignorant about this entity; combining
      // with vacuous evidence is the identity, so retain the tuple.
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(r, std::move(key)));
      continue;
    }
    matched_right[*found] = true;
    const ExtendedTuple& s = right.row(*found);

    ExtendedTuple merged;
    merged.cells.resize(r.cells.size());
    bool skip_tuple = false;
    for (size_t i = 0; i < r.cells.size() && !skip_tuple; ++i) {
      const AttributeDef& attr = left.schema()->attribute(i);
      switch (attr.kind) {
        case AttributeKind::kKey:
          merged.cells[i] = r.cells[i];
          break;
        case AttributeKind::kDefinite: {
          const Value& lv = std::get<Value>(r.cells[i]);
          const Value& rv = std::get<Value>(s.cells[i]);
          if (lv == rv) {
            merged.cells[i] = r.cells[i];
            break;
          }
          switch (options.on_definite_conflict) {
            case DefiniteConflictPolicy::kError:
              return Status::Incompatible(
                  "definite attribute '" + attr.name + "' conflicts on key (" +
                  KeyToString(key) + "): " + lv.ToString() + " vs " +
                  rv.ToString() +
                  "; attribute preprocessing should have aligned these");
            case DefiniteConflictPolicy::kPreferLeft:
              merged.cells[i] = r.cells[i];
              break;
            case DefiniteConflictPolicy::kPreferRight:
              merged.cells[i] = s.cells[i];
              break;
          }
          break;
        }
        case AttributeKind::kUncertain: {
          const EvidenceSet& les = std::get<EvidenceSet>(r.cells[i]);
          const EvidenceSet& res = std::get<EvidenceSet>(s.cells[i]);
          Result<EvidenceSet> combined =
              CombineEvidence(les, res, options.rule);
          if (combined.ok()) {
            merged.cells[i] = std::move(combined).value();
            break;
          }
          if (combined.status().code() != StatusCode::kTotalConflict) {
            return combined.status();
          }
          switch (options.on_total_conflict) {
            case TotalConflictPolicy::kError:
              return Status::TotalConflict(
                  "attribute '" + attr.name + "' of key (" +
                  KeyToString(key) +
                  ") is totally conflicting between the sources: " +
                  les.ToString() + " vs " + res.ToString() +
                  "; the data administrators must be informed");
            case TotalConflictPolicy::kSkipTuple:
              skip_tuple = true;
              break;
            case TotalConflictPolicy::kVacuous:
              merged.cells[i] = EvidenceSet::Vacuous(attr.domain);
              break;
          }
          break;
        }
      }
    }
    if (skip_tuple) continue;

    Result<SupportPair> membership =
        CombineMembership(r.membership, s.membership, options.rule);
    if (!membership.ok()) {
      if (membership.status().code() != StatusCode::kTotalConflict) {
        return membership.status();
      }
      switch (options.on_total_conflict) {
        case TotalConflictPolicy::kError:
          return Status::TotalConflict(
              "membership of key (" + KeyToString(key) +
              ") is totally conflicting between the sources");
        case TotalConflictPolicy::kSkipTuple:
          continue;
        case TotalConflictPolicy::kVacuous:
          membership = SupportPair::Unknown();
          break;
      }
    }
    merged.membership = *membership;
    // Key cells come from the validated left tuple, merged evidence
    // cells were validated by EvidenceSet::Make inside CombineEvidence.
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(merged), std::move(key)));
  }

  for (size_t j = 0; j < right.size(); ++j) {
    if (matched_right[j]) continue;
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(right.row(j)));
  }
  return out;
}

Result<ExtendedRelation> Intersect(const ExtendedRelation& left,
                                   const ExtendedRelation& right,
                                   const UnionOptions& options) {
  EVIDENT_ASSIGN_OR_RETURN(ExtendedRelation merged,
                           Union(left, right, options));
  ExtendedRelation out(left.name() + " n " + right.name(), merged.schema());
  out.Reserve(merged.size());
  for (const ExtendedTuple& t : merged.rows()) {
    const KeyVector key = merged.KeyOf(t);
    if (left.ContainsKey(key) && right.ContainsKey(key)) {
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(t));
    }
  }
  return out;
}

Result<ExtendedRelation> UnionAll(const std::vector<ExtendedRelation>& sources,
                                  const UnionOptions& options) {
  if (sources.empty()) {
    return Status::InvalidArgument("UnionAll over an empty source list");
  }
  ExtendedRelation acc = sources.front();
  for (size_t i = 1; i < sources.size(); ++i) {
    EVIDENT_ASSIGN_OR_RETURN(acc, Union(acc, sources[i], options));
  }
  return acc;
}

Result<ExtendedRelation> Project(const ExtendedRelation& input,
                                 const std::vector<std::string>& attributes) {
  if (input.schema() == nullptr) {
    return Status::InvalidArgument("projection of a relation without schema");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("projection list must be non-empty");
  }
  std::vector<size_t> indices;
  std::vector<AttributeDef> defs;
  std::unordered_set<std::string> chosen;
  for (const std::string& name : attributes) {
    EVIDENT_ASSIGN_OR_RETURN(size_t index, input.schema()->IndexOf(name));
    if (!chosen.insert(name).second) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' appears twice in projection");
    }
    indices.push_back(index);
    defs.push_back(input.schema()->attribute(index));
  }
  // The paper's projection keeps the key attributes (and always the
  // membership attribute), which also guarantees the projection needs no
  // duplicate elimination.
  for (size_t key_index : input.schema()->key_indices()) {
    if (chosen.count(input.schema()->attribute(key_index).name) == 0) {
      return Status::InvalidArgument(
          "projection must retain key attribute '" +
          input.schema()->attribute(key_index).name + "'");
    }
  }
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, RelationSchema::Make(defs));
  ExtendedRelation out("project(" + input.name() + ")", schema);
  out.Reserve(input.size());
  for (const ExtendedTuple& r : input.rows()) {
    ExtendedTuple t;
    t.cells.reserve(indices.size());
    for (size_t index : indices) t.cells.push_back(r.cells[index]);
    t.membership = r.membership;
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(t)));
  }
  return out;
}

Result<ExtendedRelation> Product(const ExtendedRelation& left,
                                 const ExtendedRelation& right) {
  if (left.schema() == nullptr || right.schema() == nullptr) {
    return Status::InvalidArgument("product of relations without schemas");
  }
  // Build the concatenated schema, qualifying colliding names.
  std::unordered_set<std::string> left_names;
  for (const AttributeDef& a : left.schema()->attributes()) {
    left_names.insert(a.name);
  }
  std::vector<AttributeDef> defs;
  defs.reserve(left.schema()->size() + right.schema()->size());
  for (const AttributeDef& a : left.schema()->attributes()) {
    AttributeDef d = a;
    if (right.schema()->Has(a.name)) {
      if (left.name().empty() || left.name() == right.name()) {
        return Status::InvalidArgument(
            "attribute '" + a.name +
            "' appears in both operands and the relation names cannot "
            "disambiguate; rename it first");
      }
      d.name = left.name() + "." + a.name;
    }
    defs.push_back(std::move(d));
  }
  for (const AttributeDef& a : right.schema()->attributes()) {
    AttributeDef d = a;
    if (left_names.count(a.name) > 0) {
      if (right.name().empty() || left.name() == right.name()) {
        return Status::InvalidArgument(
            "attribute '" + a.name +
            "' appears in both operands and the relation names cannot "
            "disambiguate; rename it first");
      }
      d.name = right.name() + "." + a.name;
    }
    defs.push_back(std::move(d));
  }
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, RelationSchema::Make(defs));
  ExtendedRelation out(left.name() + " x " + right.name(), schema);
  out.Reserve(left.size() * right.size());
  for (const ExtendedTuple& r : left.rows()) {
    for (const ExtendedTuple& s : right.rows()) {
      ExtendedTuple t;
      t.cells.reserve(r.cells.size() + s.cells.size());
      t.cells.insert(t.cells.end(), r.cells.begin(), r.cells.end());
      t.cells.insert(t.cells.end(), s.cells.begin(), s.cells.end());
      t.membership = r.membership.Multiply(s.membership);  // F_TM
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(t)));
    }
  }
  return out;
}

Result<ExtendedRelation> Join(const ExtendedRelation& left,
                              const ExtendedRelation& right,
                              const PredicatePtr& predicate,
                              const MembershipThreshold& threshold) {
  EVIDENT_ASSIGN_OR_RETURN(ExtendedRelation product, Product(left, right));
  return Select(product, predicate, threshold);
}

Result<ExtendedRelation> RenameAttribute(const ExtendedRelation& input,
                                         const std::string& from,
                                         const std::string& to) {
  if (input.schema() == nullptr) {
    return Status::InvalidArgument("rename on a relation without schema");
  }
  EVIDENT_ASSIGN_OR_RETURN(size_t index, input.schema()->IndexOf(from));
  if (input.schema()->Has(to)) {
    return Status::AlreadyExists("attribute '" + to + "' already exists");
  }
  std::vector<AttributeDef> defs = input.schema()->attributes();
  defs[index].name = to;
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, RelationSchema::Make(defs));
  ExtendedRelation out(input.name(), schema);
  out.Reserve(input.size());
  for (const ExtendedTuple& r : input.rows()) {
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(r));
  }
  return out;
}

}  // namespace evident
