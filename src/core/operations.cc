#include "core/operations.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/math_util.h"
#include "core/join_plan.h"
#include "core/parallel.h"

namespace evident {

namespace {

std::string KeyToString(const KeyVector& key) {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i) out += ",";
    out += key[i].ToString();
  }
  return out;
}

/// Minimum tuples per shard before the executor spawns a thread for it: a
/// per-tuple merge/probe is ~1-10 µs, so anything below this is cheaper
/// run inline than handed to a thread.
constexpr size_t kParallelGrain = 256;

/// Cap on up-front row reservations in operators whose output cardinality
/// is a *bound*, not a count (Product, Join): |L|·|R| can overflow size_t
/// or demand multi-GB buffers for inputs that are themselves modest.
/// Reserve at most this many rows and let the row store grow
/// geometrically past it.
constexpr size_t kMaxReserveRows = size_t{1} << 20;

/// min(l·r, kMaxReserveRows) without evaluating the overflowing product.
size_t CappedProductReserve(size_t l, size_t r) {
  if (l == 0 || r == 0) return 0;
  if (r > kMaxReserveRows / l) return kMaxReserveRows;
  return l * r;
}

/// Hash of the definite cells at `indices`, mixed exactly like
/// KeyVectorHash so equal key tuples hash equally across operands
/// (Value::Hash already makes 1 and 1.0 agree, matching operator==).
uint64_t RowKeyHash(const ExtendedTuple& tuple,
                    const std::vector<size_t>& indices) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i : indices) {
    h ^= static_cast<uint64_t>(std::get<Value>(tuple.cells[i]).Hash()) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowKeysEqual(const ExtendedTuple& a, const std::vector<size_t>& a_indices,
                  const ExtendedTuple& b,
                  const std::vector<size_t>& b_indices) {
  for (size_t k = 0; k < a_indices.size(); ++k) {
    if (!(std::get<Value>(a.cells[a_indices[k]]) ==
          std::get<Value>(b.cells[b_indices[k]]))) {
      return false;
    }
  }
  return true;
}

/// The hash-partitioned equi-join executor. Builds an open-addressing
/// table on `build`'s equi-key cells (slots hold the first row of each
/// distinct key; duplicate-key rows chain in ascending row order), then
/// probes with every `probe` row, sharding probe ranges across threads.
/// Matching pairs are materialized in left-cells-then-right-cells order,
/// filtered by the residual predicate and the threshold, and emitted
/// grouped by probe row — so the output is deterministic for any thread
/// count.
Result<ExtendedRelation> HashEquiJoin(const ExtendedRelation& left,
                                      const ExtendedRelation& right,
                                      const JoinPlan& plan,
                                      const SchemaPtr& schema,
                                      const MembershipThreshold& threshold,
                                      ExtendedRelation out) {
  constexpr uint32_t kEmpty = std::numeric_limits<uint32_t>::max();
  const bool build_left = left.size() < right.size();
  const ExtendedRelation& build = build_left ? left : right;
  const ExtendedRelation& probe = build_left ? right : left;
  std::vector<size_t> build_indices, probe_indices;
  build_indices.reserve(plan.keys.size());
  probe_indices.reserve(plan.keys.size());
  for (const EquiKey& key : plan.keys) {
    build_indices.push_back(build_left ? key.left_index : key.right_index);
    probe_indices.push_back(build_left ? key.right_index : key.left_index);
  }

  const size_t build_size = build.size();
  size_t capacity = 16;
  while (capacity < 2 * build_size) capacity <<= 1;
  const uint64_t mask = capacity - 1;
  std::vector<uint32_t> slot_row(capacity, kEmpty);  // first row of the key
  std::vector<uint32_t> chain(build_size, kEmpty);   // same-key successors
  std::vector<uint64_t> row_hash(build_size);
  for (size_t i = 0; i < build_size; ++i) {
    row_hash[i] = RowKeyHash(build.row(i), build_indices);
  }
  // Insert rows in reverse: each insertion prepends to its key's chain,
  // so chains end up in ascending row order for deterministic probing.
  for (size_t i = build_size; i-- > 0;) {
    size_t s = row_hash[i] & mask;
    while (slot_row[s] != kEmpty &&
           !(row_hash[slot_row[s]] == row_hash[i] &&
             RowKeysEqual(build.row(slot_row[s]), build_indices, build.row(i),
                          build_indices))) {
      s = (s + 1) & mask;
    }
    if (slot_row[s] != kEmpty) chain[i] = slot_row[s];
    slot_row[s] = static_cast<uint32_t>(i);
  }

  // Probe in parallel; shard outputs concatenate in shard (= probe row)
  // order. The first failing shard in shard order reports its error.
  // The exact-shard form keeps the executor's partition in lockstep with
  // the buffers sized here even if the thread cap changes concurrently.
  const size_t shard_count = ParallelShardCount(probe.size(), kParallelGrain);
  std::vector<std::vector<ExtendedTuple>> shard_rows(shard_count);
  std::vector<Status> shard_status(shard_count);
  const PredicatePtr& residual = plan.residual;
  ParallelForExactShards(
      probe.size(), shard_count,
      [&](size_t shard, size_t begin, size_t end) {
        std::vector<ExtendedTuple>& rows = shard_rows[shard];
        for (size_t p = begin; p < end; ++p) {
          const ExtendedTuple& probe_row = probe.row(p);
          const uint64_t h = RowKeyHash(probe_row, probe_indices);
          size_t s = h & mask;
          uint32_t head = kEmpty;
          while (slot_row[s] != kEmpty) {
            const uint32_t candidate = slot_row[s];
            if (row_hash[candidate] == h &&
                RowKeysEqual(build.row(candidate), build_indices, probe_row,
                             probe_indices)) {
              head = candidate;
              break;
            }
            s = (s + 1) & mask;
          }
          for (uint32_t b = head; b != kEmpty; b = chain[b]) {
            const ExtendedTuple& l = build_left ? build.row(b) : probe_row;
            const ExtendedTuple& r = build_left ? probe_row : build.row(b);
            ExtendedTuple t;
            t.cells.reserve(l.cells.size() + r.cells.size());
            t.cells.insert(t.cells.end(), l.cells.begin(), l.cells.end());
            t.cells.insert(t.cells.end(), r.cells.begin(), r.cells.end());
            t.membership = l.membership.Multiply(r.membership);  // F_TM
            // The equi-conjuncts contribute exactly (1,1) on a match, so
            // the full predicate's support reduces to the residual's.
            SupportPair support = SupportPair::Certain();
            if (residual != nullptr) {
              Result<SupportPair> evaluated =
                  residual->Evaluate(t, *schema);
              if (!evaluated.ok()) {
                shard_status[shard] = evaluated.status();
                return;
              }
              support = *evaluated;
            }
            const SupportPair revised = t.membership.Multiply(support);
            if (!revised.HasPositiveSupport()) continue;  // CWA_ER.
            if (!threshold.Accepts(revised)) continue;
            t.membership = revised;
            rows.push_back(std::move(t));
          }
        }
      });
  size_t total = 0;
  for (size_t shard = 0; shard < shard_count; ++shard) {
    EVIDENT_RETURN_NOT_OK(shard_status[shard]);
    total += shard_rows[shard].size();
  }
  out.Reserve(total);
  for (std::vector<ExtendedTuple>& rows : shard_rows) {
    for (ExtendedTuple& t : rows) {
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(t)));
    }
  }
  return out;
}

}  // namespace

Result<ExtendedRelation> Select(const ExtendedRelation& input,
                                const PredicatePtr& predicate,
                                const MembershipThreshold& threshold) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null selection predicate");
  }
  ExtendedRelation out("select(" + input.name() + ")", input.schema());
  out.Reserve(input.size());
  for (const ExtendedTuple& r : input.rows()) {
    EVIDENT_ASSIGN_OR_RETURN(SupportPair support,
                             predicate->Evaluate(r, *input.schema()));
    // F_TM: predicate satisfaction and original membership are treated as
    // independent events (Figure 3).
    const SupportPair revised = r.membership.Multiply(support);
    if (!revised.HasPositiveSupport()) continue;  // CWA_ER consistency.
    if (!threshold.Accepts(revised)) continue;
    // Cells pass through unchanged and were validated on insertion into
    // `input`; only the membership is revised (and stays a valid pair:
    // the component-wise product preserves sn <= sp).
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(ExtendedTuple(r.cells, revised)));
  }
  return out;
}

Result<SupportPair> CombineMembership(const SupportPair& a,
                                      const SupportPair& b,
                                      CombinationRule rule) {
  // All four rules have closed forms on the boolean frame Ψ =
  // {true, false}; no mass function is ever materialized. Cross-checked
  // against the generic ds/combination engine by the operations tests.
  const double t1 = a.TrueMass(), f1 = a.FalseMass(), u1 = a.UnknownMass();
  const double t2 = b.TrueMass(), f2 = b.FalseMass(), u2 = b.UnknownMass();
  switch (rule) {
    case CombinationRule::kDempster:
      return a.CombineDempster(b);
    case CombinationRule::kTBM: {
      // The caller-facing support pair cannot carry empty-set mass, so
      // the conjunctive result is renormalized — which is exactly
      // Dempster's rule, including the total-conflict failure.
      return a.CombineDempster(b);
    }
    case CombinationRule::kYager: {
      // Conflict becomes ignorance: m(Ψ) = u1·u2 + kappa.
      const double t = t1 * t2 + t1 * u2 + u1 * t2;
      const double f = f1 * f2 + f1 * u2 + u1 * f2;
      return SupportPair{ClampUnit(t), ClampUnit(1.0 - f)};
    }
    case CombinationRule::kMixing: {
      const double t = 0.5 * (t1 + t2);
      const double f = 0.5 * (f1 + f2);
      return SupportPair{ClampUnit(t), ClampUnit(1.0 - f)};
    }
  }
  return Status::InvalidArgument("unknown combination rule");
}

Result<ExtendedRelation> Union(const ExtendedRelation& left,
                               const ExtendedRelation& right,
                               const UnionOptions& options) {
  if (left.schema() == nullptr || right.schema() == nullptr) {
    return Status::InvalidArgument("union of relations without schemas");
  }
  if (!left.schema()->UnionCompatibleWith(*right.schema())) {
    return Status::Incompatible(
        "relations are not union-compatible: " + left.schema()->ToString() +
        " vs " + right.schema()->ToString());
  }
  ExtendedRelation out(left.name() + " u " + right.name(), left.schema());
  out.Reserve(left.size() + right.size());

  // Per-tuple combinations are independent (the combination kernels keep
  // their scratch thread-local), so the merge pass runs in two phases:
  // a parallel phase computes one MergeSlot per left row — the merged
  // tuple, a skip marker, or the error the row's policies produced — and
  // a serial phase walks the slots in row order, so insertion order,
  // first-error semantics and the right-side bookkeeping are identical
  // to serial execution for any thread count. Evidence cells were
  // validated when the operand relations were built and the schemas were
  // just checked union-compatible (SameDomain per attribute), so the
  // inner loop uses the trusted combination path instead of re-checking
  // per combination.
  enum class SlotKind : uint8_t { kKeep, kMerged, kSkip, kError };
  struct MergeSlot {
    SlotKind kind = SlotKind::kKeep;
    bool matched = false;
    size_t right_row = 0;
    ExtendedTuple merged;
    KeyVector key;
    Status error;
  };
  std::vector<MergeSlot> slots(left.size());

  auto merge_row = [&](size_t row) {
    MergeSlot& slot = slots[row];
    const ExtendedTuple& r = left.row(row);
    slot.key = left.KeyOf(r);
    auto found = right.FindByKey(slot.key);
    if (!found.ok()) {
      // The other source is totally ignorant about this entity; combining
      // with vacuous evidence is the identity, so retain the tuple.
      slot.kind = SlotKind::kKeep;
      return;
    }
    slot.matched = true;
    slot.right_row = *found;
    const ExtendedTuple& s = right.row(*found);

    ExtendedTuple merged;
    merged.cells.resize(r.cells.size());
    for (size_t i = 0; i < r.cells.size(); ++i) {
      const AttributeDef& attr = left.schema()->attribute(i);
      switch (attr.kind) {
        case AttributeKind::kKey:
          merged.cells[i] = r.cells[i];
          break;
        case AttributeKind::kDefinite: {
          const Value& lv = std::get<Value>(r.cells[i]);
          const Value& rv = std::get<Value>(s.cells[i]);
          if (lv == rv) {
            merged.cells[i] = r.cells[i];
            break;
          }
          switch (options.on_definite_conflict) {
            case DefiniteConflictPolicy::kError:
              slot.kind = SlotKind::kError;
              slot.error = Status::Incompatible(
                  "definite attribute '" + attr.name + "' conflicts on key (" +
                  KeyToString(slot.key) + "): " + lv.ToString() + " vs " +
                  rv.ToString() +
                  "; attribute preprocessing should have aligned these");
              return;
            case DefiniteConflictPolicy::kPreferLeft:
              merged.cells[i] = r.cells[i];
              break;
            case DefiniteConflictPolicy::kPreferRight:
              merged.cells[i] = s.cells[i];
              break;
          }
          break;
        }
        case AttributeKind::kUncertain: {
          const EvidenceSet& les = std::get<EvidenceSet>(r.cells[i]);
          const EvidenceSet& res = std::get<EvidenceSet>(s.cells[i]);
          Result<EvidenceSet> combined =
              CombineEvidenceTrusted(les, res, options.rule);
          if (combined.ok()) {
            merged.cells[i] = std::move(combined).value();
            break;
          }
          if (combined.status().code() != StatusCode::kTotalConflict) {
            slot.kind = SlotKind::kError;
            slot.error = combined.status();
            return;
          }
          switch (options.on_total_conflict) {
            case TotalConflictPolicy::kError:
              slot.kind = SlotKind::kError;
              slot.error = Status::TotalConflict(
                  "attribute '" + attr.name + "' of key (" +
                  KeyToString(slot.key) +
                  ") is totally conflicting between the sources: " +
                  les.ToString() + " vs " + res.ToString() +
                  "; the data administrators must be informed");
              return;
            case TotalConflictPolicy::kSkipTuple:
              slot.kind = SlotKind::kSkip;
              return;
            case TotalConflictPolicy::kVacuous:
              merged.cells[i] = EvidenceSet::Vacuous(attr.domain);
              break;
          }
          break;
        }
      }
    }

    Result<SupportPair> membership =
        CombineMembership(r.membership, s.membership, options.rule);
    if (!membership.ok()) {
      if (membership.status().code() != StatusCode::kTotalConflict) {
        slot.kind = SlotKind::kError;
        slot.error = membership.status();
        return;
      }
      switch (options.on_total_conflict) {
        case TotalConflictPolicy::kError:
          slot.kind = SlotKind::kError;
          slot.error = Status::TotalConflict(
              "membership of key (" + KeyToString(slot.key) +
              ") is totally conflicting between the sources");
          return;
        case TotalConflictPolicy::kSkipTuple:
          slot.kind = SlotKind::kSkip;
          return;
        case TotalConflictPolicy::kVacuous:
          membership = SupportPair::Unknown();
          break;
      }
    }
    merged.membership = *membership;
    slot.merged = std::move(merged);
    slot.kind = SlotKind::kMerged;
  };
  ParallelForShards(left.size(), kParallelGrain,
                    [&](size_t, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) merge_row(i);
                    });

  std::vector<uint8_t> matched_right(right.size(), 0);
  for (size_t i = 0; i < slots.size(); ++i) {
    MergeSlot& slot = slots[i];
    if (slot.matched) matched_right[slot.right_row] = 1;
    switch (slot.kind) {
      case SlotKind::kError:
        return slot.error;
      case SlotKind::kSkip:
        break;
      case SlotKind::kKeep:
        EVIDENT_RETURN_NOT_OK(
            out.InsertTrusted(left.row(i), std::move(slot.key)));
        break;
      case SlotKind::kMerged:
        // Key cells come from the validated left tuple; merged evidence
        // cells are combination-kernel output (valid by construction).
        EVIDENT_RETURN_NOT_OK(
            out.InsertTrusted(std::move(slot.merged), std::move(slot.key)));
        break;
    }
  }

  for (size_t j = 0; j < right.size(); ++j) {
    if (matched_right[j]) continue;
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(right.row(j)));
  }
  return out;
}

Result<ExtendedRelation> Intersect(const ExtendedRelation& left,
                                   const ExtendedRelation& right,
                                   const UnionOptions& options) {
  EVIDENT_ASSIGN_OR_RETURN(ExtendedRelation merged,
                           Union(left, right, options));
  ExtendedRelation out(left.name() + " n " + right.name(), merged.schema());
  out.Reserve(merged.size());
  for (const ExtendedTuple& t : merged.rows()) {
    const KeyVector key = merged.KeyOf(t);
    if (left.ContainsKey(key) && right.ContainsKey(key)) {
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(t));
    }
  }
  return out;
}

Result<ExtendedRelation> UnionAll(const std::vector<ExtendedRelation>& sources,
                                  const UnionOptions& options) {
  if (sources.empty()) {
    return Status::InvalidArgument("UnionAll over an empty source list");
  }
  ExtendedRelation acc = sources.front();
  for (size_t i = 1; i < sources.size(); ++i) {
    EVIDENT_ASSIGN_OR_RETURN(acc, Union(acc, sources[i], options));
  }
  return acc;
}

Result<ExtendedRelation> Project(const ExtendedRelation& input,
                                 const std::vector<std::string>& attributes) {
  if (input.schema() == nullptr) {
    return Status::InvalidArgument("projection of a relation without schema");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("projection list must be non-empty");
  }
  std::vector<size_t> indices;
  std::vector<AttributeDef> defs;
  std::unordered_set<std::string> chosen;
  for (const std::string& name : attributes) {
    EVIDENT_ASSIGN_OR_RETURN(size_t index, input.schema()->IndexOf(name));
    if (!chosen.insert(name).second) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' appears twice in projection");
    }
    indices.push_back(index);
    defs.push_back(input.schema()->attribute(index));
  }
  // The paper's projection keeps the key attributes (and always the
  // membership attribute), which also guarantees the projection needs no
  // duplicate elimination.
  for (size_t key_index : input.schema()->key_indices()) {
    if (chosen.count(input.schema()->attribute(key_index).name) == 0) {
      return Status::InvalidArgument(
          "projection must retain key attribute '" +
          input.schema()->attribute(key_index).name + "'");
    }
  }
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, RelationSchema::Make(defs));
  ExtendedRelation out("project(" + input.name() + ")", schema);
  out.Reserve(input.size());
  for (const ExtendedTuple& r : input.rows()) {
    ExtendedTuple t;
    t.cells.reserve(indices.size());
    for (size_t index : indices) t.cells.push_back(r.cells[index]);
    t.membership = r.membership;
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(t)));
  }
  return out;
}

Result<SchemaPtr> MakeProductSchema(const ExtendedRelation& left,
                                    const ExtendedRelation& right) {
  if (left.schema() == nullptr || right.schema() == nullptr) {
    return Status::InvalidArgument("product of relations without schemas");
  }
  // Concatenate the attribute lists, qualifying colliding names.
  std::unordered_set<std::string> left_names;
  for (const AttributeDef& a : left.schema()->attributes()) {
    left_names.insert(a.name);
  }
  std::vector<AttributeDef> defs;
  defs.reserve(left.schema()->size() + right.schema()->size());
  for (const AttributeDef& a : left.schema()->attributes()) {
    AttributeDef d = a;
    if (right.schema()->Has(a.name)) {
      if (left.name().empty() || left.name() == right.name()) {
        return Status::InvalidArgument(
            "attribute '" + a.name +
            "' appears in both operands and the relation names cannot "
            "disambiguate; rename it first");
      }
      d.name = left.name() + "." + a.name;
    }
    defs.push_back(std::move(d));
  }
  for (const AttributeDef& a : right.schema()->attributes()) {
    AttributeDef d = a;
    if (left_names.count(a.name) > 0) {
      if (right.name().empty() || left.name() == right.name()) {
        return Status::InvalidArgument(
            "attribute '" + a.name +
            "' appears in both operands and the relation names cannot "
            "disambiguate; rename it first");
      }
      d.name = right.name() + "." + a.name;
    }
    defs.push_back(std::move(d));
  }
  return RelationSchema::Make(std::move(defs));
}

namespace {

/// Product materialization over an already-built product schema, shared
/// by Product and the hash join's no-equi-conjunct fallback.
Result<ExtendedRelation> ProductWithSchema(const ExtendedRelation& left,
                                           const ExtendedRelation& right,
                                           const SchemaPtr& schema) {
  ExtendedRelation out(left.name() + " x " + right.name(), schema);
  out.Reserve(CappedProductReserve(left.size(), right.size()));
  for (const ExtendedTuple& r : left.rows()) {
    for (const ExtendedTuple& s : right.rows()) {
      ExtendedTuple t;
      t.cells.reserve(r.cells.size() + s.cells.size());
      t.cells.insert(t.cells.end(), r.cells.begin(), r.cells.end());
      t.cells.insert(t.cells.end(), s.cells.begin(), s.cells.end());
      t.membership = r.membership.Multiply(s.membership);  // F_TM
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(t)));
    }
  }
  return out;
}

}  // namespace

Result<ExtendedRelation> Product(const ExtendedRelation& left,
                                 const ExtendedRelation& right) {
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, MakeProductSchema(left, right));
  return ProductWithSchema(left, right, schema);
}

Result<ExtendedRelation> Join(const ExtendedRelation& left,
                              const ExtendedRelation& right,
                              const PredicatePtr& predicate,
                              const MembershipThreshold& threshold) {
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, MakeProductSchema(left, right));
  return JoinWithProductSchema(left, right, predicate, threshold,
                               std::move(schema));
}

Result<ExtendedRelation> JoinWithProductSchema(
    const ExtendedRelation& left, const ExtendedRelation& right,
    const PredicatePtr& predicate, const MembershipThreshold& threshold,
    SchemaPtr schema) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null selection predicate");
  }
  ExtendedRelation out("select(" + left.name() + " x " + right.name() + ")",
                       schema);
  if (left.empty() || right.empty()) {
    // The product is empty; selection over it never evaluates the
    // predicate, and neither do we.
    return out;
  }
  EVIDENT_ASSIGN_OR_RETURN(
      JoinPlan plan,
      AnalyzeJoinPredicate(predicate, *schema, left.schema()->size()));
  // The hash table stores row indices (and its empty-slot sentinel) in
  // uint32_t; operands at or beyond that bound — unreachable for
  // in-memory relations today — take the materialized path rather than
  // silently aliasing rows.
  const bool table_fits =
      std::min(left.size(), right.size()) <
      static_cast<size_t>(std::numeric_limits<uint32_t>::max());
  if (plan.keys.empty() || !table_fits) {
    // No definite equi-conjunct to partition on: the paper's definition,
    // σ̃ over the materialized product.
    EVIDENT_ASSIGN_OR_RETURN(ExtendedRelation product,
                             ProductWithSchema(left, right, schema));
    return Select(product, predicate, threshold);
  }
  return HashEquiJoin(left, right, plan, schema, threshold, std::move(out));
}

Result<ExtendedRelation> RenameAttribute(const ExtendedRelation& input,
                                         const std::string& from,
                                         const std::string& to) {
  if (input.schema() == nullptr) {
    return Status::InvalidArgument("rename on a relation without schema");
  }
  EVIDENT_ASSIGN_OR_RETURN(size_t index, input.schema()->IndexOf(from));
  if (input.schema()->Has(to)) {
    return Status::AlreadyExists("attribute '" + to + "' already exists");
  }
  std::vector<AttributeDef> defs = input.schema()->attributes();
  defs[index].name = to;
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, RelationSchema::Make(defs));
  ExtendedRelation out(input.name(), schema);
  out.Reserve(input.size());
  for (const ExtendedTuple& r : input.rows()) {
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(r));
  }
  return out;
}

}  // namespace evident
