#include "core/operations.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/math_util.h"
#include "core/bound_predicate.h"
#include "core/column_store.h"
#include "core/join_plan.h"
#include "core/parallel.h"
#include "core/query_context.h"

namespace evident {

namespace {

/// Storage mode of the operator implementations (see operations.h).
std::atomic<bool> g_columnar_execution{true};

std::string KeyToString(const KeyVector& key) {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i) out += ",";
    out += key[i].ToString();
  }
  return out;
}

/// Minimum tuples per shard before the executor spawns a thread for it: a
/// per-tuple merge/probe is ~1-10 µs, so anything below this is cheaper
/// run inline than handed to a thread.
constexpr size_t kParallelGrain = 256;

/// Cap on up-front row reservations in operators whose output cardinality
/// is a *bound*, not a count (Product, Join): |L|·|R| can overflow size_t
/// or demand multi-GB buffers for inputs that are themselves modest.
/// Reserve at most this many rows and let the row store grow
/// geometrically past it.
constexpr size_t kMaxReserveRows = size_t{1} << 20;

/// min(l·r, kMaxReserveRows) without evaluating the overflowing product.
size_t CappedProductReserve(size_t l, size_t r) {
  if (l == 0 || r == 0) return 0;
  if (r > kMaxReserveRows / l) return kMaxReserveRows;
  return l * r;
}

/// Serial governed loops (product tiling, multiway enumeration, the
/// row-mode predicate walks) poll the query context every this many
/// iterations — frequent enough that a 1 ms deadline lands mid-loop,
/// rare enough to stay invisible in profiles.
constexpr uint64_t kGovernorTick = 1024;

/// The operator-completion charge: output rows against the row cap, then
/// rows × FootprintPerRow(schema) against the memory budget. Both
/// executors of an operator emit the same logical output, so governed
/// charge sequences — and therefore budget/cap errors — are identical
/// across execution modes. Free when ungoverned.
Status GovernorChargeOutput(const RelationSchema& schema, uint64_t rows) {
  QueryContext* const ctx = CurrentQueryContext();
  if (ctx == nullptr) return Status::OK();
  return ctx->ChargeOutput(schema, rows);
}

/// After a parallel pass of a governed query: workers stop claiming
/// morsels once a limit trips, leaving later slots benignly empty —
/// surface the sticky first error instead of assembling a truncated
/// result.
Status GovernorAfterPass() {
  QueryContext* const ctx = CurrentQueryContext();
  if (ctx != nullptr && ctx->failed()) return ctx->first_error();
  return Status::OK();
}

/// Hash of the definite cells at `indices`, mixed exactly like the key
/// index so equal key tuples hash equally across operands (Value::Hash
/// already makes 1 and 1.0 agree, matching operator==).
uint64_t RowKeyHash(const ExtendedTuple& tuple,
                    const std::vector<size_t>& indices) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i : indices) {
    h ^= static_cast<uint64_t>(std::get<Value>(tuple.cells[i]).Hash()) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowKeysEqual(const ExtendedTuple& a, const std::vector<size_t>& a_indices,
                  const ExtendedTuple& b,
                  const std::vector<size_t>& b_indices) {
  for (size_t k = 0; k < a_indices.size(); ++k) {
    if (!(std::get<Value>(a.cells[a_indices[k]]) ==
          std::get<Value>(b.cells[b_indices[k]]))) {
      return false;
    }
  }
  return true;
}

/// The hash-partitioned equi-join executor. Builds an open-addressing
/// table on `build`'s equi-key cells (slots hold the first row of each
/// distinct key; duplicate-key rows chain in ascending row order), then
/// probes with every `probe` row, sharding probe ranges across threads.
/// Matching pairs are materialized in left-cells-then-right-cells order,
/// filtered by the residual predicate and the threshold, and emitted
/// grouped by probe row — so the output is deterministic for any thread
/// count.
///
/// This is the row-mode (and interpreted-residual) executor: each pair
/// is materialized first and the interpreted predicate evaluates over
/// the concatenated tuple, the reference behaviour including per-pair
/// errors. Fully-bound residuals under columnar execution take
/// HashEquiJoinColumnarSplice instead, which computes the identical
/// support and revised membership without building any rows.
Result<ExtendedRelation> HashEquiJoin(const ExtendedRelation& left,
                                      const ExtendedRelation& right,
                                      const JoinPlan& plan,
                                      const SchemaPtr& schema,
                                      const MembershipThreshold& threshold,
                                      bool build_left, ExtendedRelation out) {
  // Lazy row materialization is not thread-safe; touch it on this thread
  // before the sharded probe loop reads rows (no-ops for row-mode
  // operands).
  (void)left.rows();
  (void)right.rows();
  constexpr uint32_t kEmpty = std::numeric_limits<uint32_t>::max();
  const ExtendedRelation& build = build_left ? left : right;
  const ExtendedRelation& probe = build_left ? right : left;
  std::vector<size_t> build_indices, probe_indices;
  build_indices.reserve(plan.keys.size());
  probe_indices.reserve(plan.keys.size());
  for (const EquiKey& key : plan.keys) {
    build_indices.push_back(build_left ? key.left_index : key.right_index);
    probe_indices.push_back(build_left ? key.right_index : key.left_index);
  }

  const size_t build_size = build.size();
  size_t capacity = 16;
  while (capacity < 2 * build_size) capacity <<= 1;
  const uint64_t mask = capacity - 1;
  std::vector<uint32_t> slot_row(capacity, kEmpty);  // first row of the key
  std::vector<uint32_t> chain(build_size, kEmpty);   // same-key successors
  std::vector<uint64_t> row_hash(build_size);
  for (size_t i = 0; i < build_size; ++i) {
    row_hash[i] = RowKeyHash(build.row(i), build_indices);
  }
  // Insert rows in reverse: each insertion prepends to its key's chain,
  // so chains end up in ascending row order for deterministic probing.
  for (size_t i = build_size; i-- > 0;) {
    size_t s = row_hash[i] & mask;
    while (slot_row[s] != kEmpty &&
           !(row_hash[slot_row[s]] == row_hash[i] &&
             RowKeysEqual(build.row(slot_row[s]), build_indices, build.row(i),
                          build_indices))) {
      s = (s + 1) & mask;
    }
    if (slot_row[s] != kEmpty) chain[i] = slot_row[s];
    slot_row[s] = static_cast<uint32_t>(i);
  }

  const PredicatePtr& residual = plan.residual;

  // Probe over morsels of the probe range; morsel outputs concatenate in
  // morsel (= probe row) order, so a skewed key distribution straggles
  // the operator by at most one morsel instead of one static shard. The
  // first failing morsel in morsel order holds the globally first
  // failing probe row (morsels are contiguous ascending and each stops
  // at its first error), so error reporting is identical to serial.
  const size_t morsel_count =
      ParallelMorselCount(probe.size(), kParallelGrain);
  std::vector<std::vector<ExtendedTuple>> morsel_rows(morsel_count);
  std::vector<Status> morsel_status(morsel_count);
  ParallelForMorsels(
      probe.size(), kParallelGrain,
      [&](size_t morsel, size_t begin, size_t end) {
        std::vector<ExtendedTuple>& rows = morsel_rows[morsel];
        for (size_t p = begin; p < end; ++p) {
          const ExtendedTuple& probe_row = probe.row(p);
          const uint64_t h = RowKeyHash(probe_row, probe_indices);
          size_t s = h & mask;
          uint32_t head = kEmpty;
          while (slot_row[s] != kEmpty) {
            const uint32_t candidate = slot_row[s];
            if (row_hash[candidate] == h &&
                RowKeysEqual(build.row(candidate), build_indices, probe_row,
                             probe_indices)) {
              head = candidate;
              break;
            }
            s = (s + 1) & mask;
          }
          for (uint32_t b = head; b != kEmpty; b = chain[b]) {
            const ExtendedTuple& l = build_left ? build.row(b) : probe_row;
            const ExtendedTuple& r = build_left ? probe_row : build.row(b);
            ExtendedTuple t;
            t.cells.reserve(l.cells.size() + r.cells.size());
            t.cells.insert(t.cells.end(), l.cells.begin(), l.cells.end());
            t.cells.insert(t.cells.end(), r.cells.begin(), r.cells.end());
            t.membership = l.membership.Multiply(r.membership);  // F_TM
            // The equi-conjuncts contribute exactly (1,1) on a match, so
            // the full predicate's support reduces to the residual's.
            SupportPair support = SupportPair::Certain();
            if (residual != nullptr) {
              Result<SupportPair> evaluated =
                  residual->Evaluate(t, *schema);
              if (!evaluated.ok()) {
                morsel_status[morsel] = evaluated.status();
                return;
              }
              support = *evaluated;
            }
            const SupportPair revised = t.membership.Multiply(support);
            if (!revised.HasPositiveSupport()) continue;  // CWA_ER.
            if (!threshold.Accepts(revised)) continue;
            t.membership = revised;
            rows.push_back(std::move(t));
          }
        }
        // Incremental row-cap charge at the mode-invariant emission site:
        // per-morsel pair counts are identical in the columnar splice
        // executor, so the cap trips (count-free message) iff it trips
        // there. Errors are sticky; the post-pass check surfaces them.
        if (QueryContext* const ctx = CurrentQueryContext()) {
          (void)ctx->ChargeRows(rows.size());
        }
      });
  EVIDENT_RETURN_NOT_OK(GovernorAfterPass());
  size_t total = 0;
  for (size_t morsel = 0; morsel < morsel_count; ++morsel) {
    EVIDENT_RETURN_NOT_OK(morsel_status[morsel]);
    total += morsel_rows[morsel].size();
  }
  if (QueryContext* const ctx = CurrentQueryContext()) {
    // Completion memory charge, before the output buffer is reserved.
    EVIDENT_RETURN_NOT_OK(ctx->ChargeMemory(*schema, total));
  }
  out.Reserve(total);
  for (std::vector<ExtendedTuple>& rows : morsel_rows) {
    for (ExtendedTuple& t : rows) {
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(t)));
    }
  }
  return out;
}

}  // namespace

void SetColumnarExecution(bool enabled) {
  g_columnar_execution.store(enabled, std::memory_order_relaxed);
}

bool ColumnarExecutionEnabled() {
  return g_columnar_execution.load(std::memory_order_relaxed);
}

namespace {

/// Reference implementation of extended selection: tuple-at-a-time over
/// the row store with the interpreted predicate.
Result<ExtendedRelation> SelectRows(const ExtendedRelation& input,
                                    const PredicatePtr& predicate,
                                    const MembershipThreshold& threshold) {
  ExtendedRelation out("select(" + input.name() + ")", input.schema());
  out.Reserve(input.size());
  QueryContext* const ctx = CurrentQueryContext();
  uint64_t tick = 0;
  for (const ExtendedTuple& r : input.rows()) {
    if (ctx != nullptr && ++tick % kGovernorTick == 0) {
      EVIDENT_RETURN_NOT_OK(ctx->PollTick());
    }
    EVIDENT_ASSIGN_OR_RETURN(SupportPair support,
                             predicate->Evaluate(r, *input.schema()));
    // F_TM: predicate satisfaction and original membership are treated as
    // independent events (Figure 3).
    const SupportPair revised = r.membership.Multiply(support);
    if (!revised.HasPositiveSupport()) continue;  // CWA_ER consistency.
    if (!threshold.Accepts(revised)) continue;
    // Cells pass through unchanged and were validated on insertion into
    // `input`; only the membership is revised (and stays a valid pair:
    // the component-wise product preserves sn <= sp).
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(ExtendedTuple(r.cells, revised)));
  }
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*input.schema(), out.size()));
  return out;
}

/// The key of row `row` as Values, for error messages.
KeyVector KeyOfStoreRow(const ColumnStore& store, size_t row) {
  KeyVector key;
  for (size_t a : store.schema()->key_indices()) {
    key.push_back(store.value_column(a).values[row]);
  }
  return key;
}

/// Splices the rows listed in `keep` (ascending) out of `store` into a
/// fresh column image carrying `memberships` (parallel to `keep`) under
/// the same schema: ColumnStore::SpliceRows with the identity attribute
/// map. The shared row-subset primitive of the columnar operators
/// (Select's keep list, the pushdown prefilter, Intersect's merged
/// rows).
ColumnStore SpliceKeptRows(const ColumnStore& store, std::string name,
                           const std::vector<uint32_t>& keep,
                           const std::vector<SupportPair>& memberships) {
  std::vector<size_t> identity(store.schema()->size());
  for (size_t a = 0; a < identity.size(); ++a) identity[a] = a;
  return ColumnStore::SpliceRows(store, store.schema(), std::move(name),
                                 identity, keep, memberships);
}

/// Evaluates `bound` over the rows of [begin, end) whose partition was
/// not pruned, in maximal contiguous runs; pruned rows' output slots
/// stay unset and callers never read them. A refuted partition's rows
/// would all evaluate to support (0, 0) and be dropped, so skipping
/// them changes no output — it only keeps the scan from touching (and
/// the mapped loader from verifying) the pruned partitions' bytes.
void EvaluateUnprunedRows(const BoundPredicate& bound,
                          const ColumnStore& store, size_t begin, size_t end,
                          const std::vector<uint8_t>& row_pruned,
                          SupportPair* out) {
  if (row_pruned.empty()) {
    bound.EvaluateColumns(store, begin, end, out);
    return;
  }
  size_t r = begin;
  while (r < end) {
    if (row_pruned[r]) {
      ++r;
      continue;
    }
    size_t run = r + 1;
    while (run < end && !row_pruned[run]) ++run;
    bound.EvaluateColumns(store, r, run, out);
    r = run;
  }
}

/// Columnar extended selection: the predicate is bound once (attribute
/// positions, IS-masks, theta tables) and evaluated column-at-a-time
/// over the packed evidence spans, sharded across threads; the serial
/// output pass filters in row order and splices the surviving rows'
/// column slices into a fresh column image — no row objects are built
/// unless a downstream consumer asks for them. Falls back to the row
/// path whenever the predicate does not bind completely — including
/// predicates that error per row — so behaviour is identical.
Result<ExtendedRelation> SelectColumnar(const ExtendedRelation& input,
                                        const PredicatePtr& predicate,
                                        const MembershipThreshold& threshold) {
  const BoundPredicate bound =
      BoundPredicate::Bind(predicate, input.schema());
  if (!bound.fully_bound()) return SelectRows(input, predicate, threshold);
  const ColumnStore& store = input.columns();
  const size_t n = input.size();
  // Zone-map pruning: a partition the predicate refutes contributes no
  // output row (its supports would all be (0,0), dropped by CWA_ER), so
  // its rows are neither evaluated nor verified.
  EVIDENT_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> row_pruned,
      PruneAndVerifyPartitions(store, [&](const auto& zone) {
        return bound.RefutesPartition(zone);
      }));
  // Evaluate and filter over the unpruned runs only: the morsel domain
  // is the compacted surviving row set, so a mostly-pruned scan costs
  // O(surviving rows) per pass, not O(rows).
  const std::vector<std::pair<size_t, size_t>> runs =
      UnprunedRowRuns(store, row_pruned);
  size_t live = 0;
  for (const auto& run : runs) live += run.second - run.first;
  std::vector<SupportPair> supports(n);
  // Morsels write disjoint absolute slices of the shared supports array.
  ParallelForMorsels(live, kParallelGrain,
                     [&](size_t, size_t compact_begin, size_t compact_end) {
                       ForEachRunSlice(
                           runs, compact_begin, compact_end,
                           [&](size_t begin, size_t end) {
                             bound.EvaluateColumns(store, begin, end,
                                                   supports.data());
                           });
                     });
  EVIDENT_RETURN_NOT_OK(GovernorAfterPass());

  std::vector<uint32_t> keep;
  std::vector<SupportPair> revised_memberships;
  for (const auto& [run_begin, run_end] : runs) {
    for (size_t i = run_begin; i < run_end; ++i) {
      // F_TM: predicate satisfaction and original membership are treated
      // as independent events (Figure 3).
      const SupportPair revised = store.membership(i).Multiply(supports[i]);
      if (!revised.HasPositiveSupport()) continue;  // CWA_ER consistency.
      if (!threshold.Accepts(revised)) continue;
      keep.push_back(static_cast<uint32_t>(i));
      revised_memberships.push_back(revised);
    }
  }
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*input.schema(), keep.size()));

  return ExtendedRelation::AdoptColumns(
      SpliceKeptRows(store, "select(" + input.name() + ")", keep,
                     revised_memberships));
}

/// Reference implementation of the pushdown prefilter: interpreted
/// evaluation per row; drops a row iff some conjunct's support has
/// sn == 0, leaving cells and membership untouched.
Result<ExtendedRelation> FilterPositiveSupportRows(
    const ExtendedRelation& input,
    const std::vector<PredicatePtr>& conjuncts) {
  ExtendedRelation out(input.name(), input.schema());
  out.Reserve(input.size());
  QueryContext* const ctx = CurrentQueryContext();
  uint64_t tick = 0;
  for (const ExtendedTuple& r : input.rows()) {
    if (ctx != nullptr && ++tick % kGovernorTick == 0) {
      EVIDENT_RETURN_NOT_OK(ctx->PollTick());
    }
    bool keep = true;
    for (const PredicatePtr& conjunct : conjuncts) {
      EVIDENT_ASSIGN_OR_RETURN(SupportPair support,
                               conjunct->Evaluate(r, *input.schema()));
      if (!support.HasPositiveSupport()) {
        keep = false;
        break;
      }
    }
    if (keep) EVIDENT_RETURN_NOT_OK(out.InsertTrusted(r));
  }
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*input.schema(), out.size()));
  return out;
}

/// Columnar pushdown prefilter: every conjunct is bound once and
/// evaluated column-at-a-time, sharded across threads; the survivors'
/// column slices are spliced with their original memberships. A conjunct
/// that does not bind completely sends the whole call to the interpreted
/// row path (the optimizer only pushes bindable conjuncts, so this is a
/// safety net, not a fast-path fork).
Result<ExtendedRelation> FilterPositiveSupportColumnar(
    const ExtendedRelation& input,
    const std::vector<PredicatePtr>& conjuncts) {
  std::vector<BoundPredicate> bound;
  bound.reserve(conjuncts.size());
  for (const PredicatePtr& conjunct : conjuncts) {
    bound.push_back(BoundPredicate::Bind(conjunct, input.schema()));
    if (!bound.back().fully_bound()) {
      return FilterPositiveSupportRows(input, conjuncts);
    }
  }
  const ColumnStore& store = input.columns();
  const size_t n = input.size();
  // Zone-map pruning: a partition some conjunct refutes would see that
  // conjunct's support hit sn == 0 on every row, so every row is
  // dropped — mark them up front and never evaluate (or verify) them.
  EVIDENT_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> row_pruned,
      PruneAndVerifyPartitions(store, [&](const auto& zone) {
        for (const BoundPredicate& conjunct : bound) {
          if (conjunct.RefutesPartition(zone)) return true;
        }
        return false;
      }));
  // Conjuncts evaluate over the unpruned runs only — the morsel domain
  // is the compacted surviving row set — so a mostly-pruned prefilter
  // costs O(surviving rows) per conjunct, not O(rows).
  const std::vector<std::pair<size_t, size_t>> runs =
      UnprunedRowRuns(store, row_pruned);
  size_t live = 0;
  for (const auto& run : runs) live += run.second - run.first;
  std::vector<uint8_t> drop(n, 0);
  std::vector<SupportPair> supports(n);
  for (const BoundPredicate& conjunct : bound) {
    ParallelForMorsels(
        live, kParallelGrain,
        [&](size_t, size_t compact_begin, size_t compact_end) {
          ForEachRunSlice(runs, compact_begin, compact_end,
                          [&](size_t begin, size_t end) {
                            conjunct.EvaluateColumns(store, begin, end,
                                                     supports.data());
                            for (size_t i = begin; i < end; ++i) {
                              if (!supports[i].HasPositiveSupport()) {
                                drop[i] = 1;
                              }
                            }
                          });
        });
  }
  EVIDENT_RETURN_NOT_OK(GovernorAfterPass());
  std::vector<uint32_t> keep;
  std::vector<SupportPair> memberships;
  for (const auto& [run_begin, run_end] : runs) {
    for (size_t i = run_begin; i < run_end; ++i) {
      if (drop[i]) continue;
      keep.push_back(static_cast<uint32_t>(i));
      memberships.push_back(store.membership(i));
    }
  }
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*input.schema(), keep.size()));
  return ExtendedRelation::AdoptColumns(
      SpliceKeptRows(store, input.name(), keep, memberships));
}

}  // namespace

Result<ExtendedRelation> Select(const ExtendedRelation& input,
                                const PredicatePtr& predicate,
                                const MembershipThreshold& threshold) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null selection predicate");
  }
  return ColumnarExecutionEnabled()
             ? SelectColumnar(input, predicate, threshold)
             : SelectRows(input, predicate, threshold);
}

Result<ExtendedRelation> FilterPositiveSupport(
    const ExtendedRelation& input,
    const std::vector<PredicatePtr>& conjuncts) {
  for (const PredicatePtr& conjunct : conjuncts) {
    if (conjunct == nullptr) {
      return Status::InvalidArgument("null prefilter conjunct");
    }
  }
  return ColumnarExecutionEnabled()
             ? FilterPositiveSupportColumnar(input, conjuncts)
             : FilterPositiveSupportRows(input, conjuncts);
}

Result<SupportPair> CombineMembership(const SupportPair& a,
                                      const SupportPair& b,
                                      CombinationRule rule) {
  // All four rules have closed forms on the boolean frame Ψ =
  // {true, false}; no mass function is ever materialized. Cross-checked
  // against the generic ds/combination engine by the operations tests.
  const double t1 = a.TrueMass(), f1 = a.FalseMass(), u1 = a.UnknownMass();
  const double t2 = b.TrueMass(), f2 = b.FalseMass(), u2 = b.UnknownMass();
  switch (rule) {
    case CombinationRule::kDempster:
      return a.CombineDempster(b);
    case CombinationRule::kTBM: {
      // The caller-facing support pair cannot carry empty-set mass, so
      // the conjunctive result is renormalized — which is exactly
      // Dempster's rule, including the total-conflict failure.
      return a.CombineDempster(b);
    }
    case CombinationRule::kYager: {
      // Conflict becomes ignorance: m(Ψ) = u1·u2 + kappa.
      const double t = t1 * t2 + t1 * u2 + u1 * t2;
      const double f = f1 * f2 + f1 * u2 + u1 * f2;
      return SupportPair{ClampUnit(t), ClampUnit(1.0 - f)};
    }
    case CombinationRule::kMixing: {
      const double t = 0.5 * (t1 + t2);
      const double f = 0.5 * (f1 + f2);
      return SupportPair{ClampUnit(t), ClampUnit(1.0 - f)};
    }
  }
  return Status::InvalidArgument("unknown combination rule");
}

namespace {

/// Reference implementation of extended union: tuple-at-a-time over the
/// row store (see the columnar implementation below for the production
/// path). Per-tuple combinations are independent (the combination
/// kernels keep their scratch thread-local), so the merge pass runs in
/// two phases: a parallel phase computes one MergeSlot per left row —
/// the merged tuple, a skip marker, or the error the row's policies
/// produced — and a serial phase walks the slots in row order, so
/// insertion order, first-error semantics and the right-side bookkeeping
/// are identical to serial execution for any thread count. Evidence
/// cells were validated when the operand relations were built and the
/// schemas were just checked union-compatible (SameDomain per
/// attribute), so the inner loop uses the trusted combination path
/// instead of re-checking per combination.
Result<ExtendedRelation> UnionRows(const ExtendedRelation& left,
                                   const ExtendedRelation& right,
                                   const UnionOptions& options,
                                   ExtendedRelation out) {
  // Materialize lazy state on this thread before the sharded merge pass
  // touches rows and the right index (no-ops for row-mode operands).
  (void)left.rows();
  (void)right.rows();
  right.EnsureKeyIndex();
  enum class SlotKind : uint8_t { kKeep, kMerged, kSkip, kError };
  struct MergeSlot {
    SlotKind kind = SlotKind::kKeep;
    bool matched = false;
    size_t right_row = 0;
    ExtendedTuple merged;
    KeyVector key;
    Status error;
  };
  std::vector<MergeSlot> slots(left.size());

  auto merge_row = [&](size_t row) {
    MergeSlot& slot = slots[row];
    const ExtendedTuple& r = left.row(row);
    slot.key = left.KeyOf(r);
    auto found = right.FindByKey(slot.key);
    if (!found.ok()) {
      // The other source is totally ignorant about this entity; combining
      // with vacuous evidence is the identity, so retain the tuple.
      slot.kind = SlotKind::kKeep;
      return;
    }
    slot.matched = true;
    slot.right_row = *found;
    const ExtendedTuple& s = right.row(*found);

    ExtendedTuple merged;
    merged.cells.resize(r.cells.size());
    for (size_t i = 0; i < r.cells.size(); ++i) {
      const AttributeDef& attr = left.schema()->attribute(i);
      switch (attr.kind) {
        case AttributeKind::kKey:
          merged.cells[i] = r.cells[i];
          break;
        case AttributeKind::kDefinite: {
          const Value& lv = std::get<Value>(r.cells[i]);
          const Value& rv = std::get<Value>(s.cells[i]);
          if (lv == rv) {
            merged.cells[i] = r.cells[i];
            break;
          }
          switch (options.on_definite_conflict) {
            case DefiniteConflictPolicy::kError:
              slot.kind = SlotKind::kError;
              slot.error = Status::Incompatible(
                  "definite attribute '" + attr.name + "' conflicts on key (" +
                  KeyToString(slot.key) + "): " + lv.ToString() + " vs " +
                  rv.ToString() +
                  "; attribute preprocessing should have aligned these");
              return;
            case DefiniteConflictPolicy::kPreferLeft:
              merged.cells[i] = r.cells[i];
              break;
            case DefiniteConflictPolicy::kPreferRight:
              merged.cells[i] = s.cells[i];
              break;
          }
          break;
        }
        case AttributeKind::kUncertain: {
          const EvidenceSet& les = std::get<EvidenceSet>(r.cells[i]);
          const EvidenceSet& res = std::get<EvidenceSet>(s.cells[i]);
          Result<EvidenceSet> combined =
              CombineEvidenceTrusted(les, res, options.rule);
          if (combined.ok()) {
            merged.cells[i] = std::move(combined).value();
            break;
          }
          if (combined.status().code() != StatusCode::kTotalConflict) {
            slot.kind = SlotKind::kError;
            slot.error = combined.status();
            return;
          }
          switch (options.on_total_conflict) {
            case TotalConflictPolicy::kError:
              slot.kind = SlotKind::kError;
              slot.error = Status::TotalConflict(
                  "attribute '" + attr.name + "' of key (" +
                  KeyToString(slot.key) +
                  ") is totally conflicting between the sources: " +
                  les.ToString() + " vs " + res.ToString() +
                  "; the data administrators must be informed");
              return;
            case TotalConflictPolicy::kSkipTuple:
              slot.kind = SlotKind::kSkip;
              return;
            case TotalConflictPolicy::kVacuous:
              merged.cells[i] = EvidenceSet::Vacuous(attr.domain);
              break;
          }
          break;
        }
      }
    }

    Result<SupportPair> membership =
        CombineMembership(r.membership, s.membership, options.rule);
    if (!membership.ok()) {
      if (membership.status().code() != StatusCode::kTotalConflict) {
        slot.kind = SlotKind::kError;
        slot.error = membership.status();
        return;
      }
      switch (options.on_total_conflict) {
        case TotalConflictPolicy::kError:
          slot.kind = SlotKind::kError;
          slot.error = Status::TotalConflict(
              "membership of key (" + KeyToString(slot.key) +
              ") is totally conflicting between the sources");
          return;
        case TotalConflictPolicy::kSkipTuple:
          slot.kind = SlotKind::kSkip;
          return;
        case TotalConflictPolicy::kVacuous:
          membership = SupportPair::Unknown();
          break;
      }
    }
    merged.membership = *membership;
    slot.merged = std::move(merged);
    slot.kind = SlotKind::kMerged;
  };
  ParallelForMorsels(left.size(), kParallelGrain,
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) merge_row(i);
                     });
  EVIDENT_RETURN_NOT_OK(GovernorAfterPass());

  std::vector<uint8_t> matched_right(right.size(), 0);
  for (size_t i = 0; i < slots.size(); ++i) {
    MergeSlot& slot = slots[i];
    if (slot.matched) matched_right[slot.right_row] = 1;
    switch (slot.kind) {
      case SlotKind::kError:
        return slot.error;
      case SlotKind::kSkip:
        break;
      case SlotKind::kKeep:
        EVIDENT_RETURN_NOT_OK(out.InsertTrusted(left.row(i)));
        break;
      case SlotKind::kMerged:
        // Key cells come from the validated left tuple; merged evidence
        // cells are combination-kernel output (valid by construction).
        EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(slot.merged)));
        break;
    }
  }

  for (size_t j = 0; j < right.size(); ++j) {
    if (matched_right[j]) continue;
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(right.row(j)));
  }
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*left.schema(), out.size()));
  return out;
}

/// Columnar extended union. Four phases over the operands' ColumnStore
/// images:
///
///  1. Probe — every left row's key is encoded off the contiguous key
///     value columns into a reused buffer and looked up in the right
///     relation's flat encoded-key index (no per-row key
///     materialization), sharded across threads.
///  2. Batch combine — for each packed uncertain attribute, the matched
///     row pairs go through CombineColumnBatch over the contiguous focal
///     spans, sharded over the pair range (each shard handles all
///     attributes of its pair slice for locality). Wide (> 64 value)
///     domains keep the row-store kernel and are combined in the verdict
///     pass.
///  3. Verdict — a serial pass in left-row order applies the conflict
///     policies in schema-attribute order (exactly the row path's
///     error/skip precedence, including first-error and its messages)
///     and combines memberships via the closed forms, deciding for each
///     output row where its cells come from.
///  4. Build — the output's column image is assembled column-at-a-time
///     by splicing value/span slices from the operand stores and the
///     batch results, and adopted as a columnar-mode relation: no row
///     objects, no index inserts — both materialize lazily if a
///     downstream consumer needs them.
///
/// The combination arithmetic runs through the same span kernels as the
/// row path, so the result is bit-identical in both storage modes for
/// any thread count.
///
/// When `merged_tags` is non-null it receives one byte per output row —
/// 1 for a merged pair (the entity exists in both sources), 0 for a row
/// retained from a single source. Intersect consumes this instead of
/// re-encoding and re-probing the keys this pass already resolved.
Result<ExtendedRelation> UnionColumnar(const ExtendedRelation& left,
                                       const ExtendedRelation& right,
                                       const UnionOptions& options,
                                       std::vector<uint8_t>* merged_tags) {
  const SchemaPtr& schema = left.schema();
  const size_t n = left.size();
  const ColumnStore& left_store = left.columns();
  const ColumnStore& right_store = right.columns();
  right.EnsureKeyIndex();

  // Phase 1: probe off the left store's cached encoded-key arena — for a
  // catalog relation the arena persists across queries, so repeated
  // scans skip re-encoding entirely. (ProbeEncodedKey, not
  // FindByEncodedKey: a miss per unmatched left row must not build a
  // NotFound Status string.)
  static_assert(EncodedKeyIndex::kNoRow ==
                std::numeric_limits<uint32_t>::max());
  constexpr uint32_t kNoMatch = EncodedKeyIndex::kNoRow;
  const ColumnStore::EncodedKeys& left_keys = left_store.encoded_keys();
  std::vector<uint32_t> match(n, kNoMatch);
  ParallelForMorsels(n, kParallelGrain,
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         match[i] = right.ProbeEncodedKey(left_keys.key(i));
                       }
                     });
  EVIDENT_RETURN_NOT_OK(GovernorAfterPass());

  std::vector<uint32_t> pair_left, pair_right;
  for (size_t i = 0; i < n; ++i) {
    if (match[i] != kNoMatch) {
      pair_left.push_back(static_cast<uint32_t>(i));
      pair_right.push_back(match[i]);
    }
  }
  const size_t pairs = pair_left.size();

  // Phase 2: batch combine per packed uncertain attribute.
  struct AttrBatch {
    size_t attr = 0;
    const ColumnStore::EvidenceColumn* left_col = nullptr;
    const ColumnStore::EvidenceColumn* right_col = nullptr;
    std::vector<BatchCombineResult> morsels;
  };
  std::vector<AttrBatch> batches;
  std::vector<int> batch_of_attr(schema->size(), -1);
  std::vector<int> boxed_slot_of_attr(schema->size(), -1);
  std::vector<std::vector<std::optional<EvidenceSet>>> boxed_results;
  for (size_t a = 0; a < schema->size(); ++a) {
    if (schema->attribute(a).kind != AttributeKind::kUncertain) continue;
    if (left_store.kind(a) == ColumnStore::ColumnKind::kEvidence) {
      batch_of_attr[a] = static_cast<int>(batches.size());
      AttrBatch batch;
      batch.attr = a;
      batch.left_col = &left_store.evidence_column(a);
      batch.right_col = &right_store.evidence_column(a);
      batches.push_back(std::move(batch));
    } else {
      boxed_slot_of_attr[a] = static_cast<int>(boxed_results.size());
      boxed_results.emplace_back(pairs);  // slots filled by the verdict pass
    }
  }
  // Combine over morsels of the pair range, pulled from the shared
  // morsel queue: a hot key that funnels many pairs into one region no
  // longer straggles a static shard — fast workers just claim more
  // morsels. Fixed boundaries (pair p lives in morsel p / grain at slot
  // p % grain) let the verdict and build passes address results without
  // any cursor bookkeeping.
  const size_t morsel_count = ParallelMorselCount(pairs, kParallelGrain);
  if (pairs > 0) {
    // Size every per-morsel output before the workers start: each morsel
    // writes only its own slot.
    for (AttrBatch& batch : batches) batch.morsels.resize(morsel_count);
    ParallelForMorsels(
        pairs, kParallelGrain, [&](size_t morsel, size_t begin, size_t end) {
          for (AttrBatch& batch : batches) {
            CombineColumnBatch(batch.left_col->universe, options.rule,
                               batch.left_col->Spans(),
                               pair_left.data() + begin,
                               batch.right_col->Spans(),
                               pair_right.data() + begin, end - begin,
                               &batch.morsels[morsel]);
          }
        });
    EVIDENT_RETURN_NOT_OK(GovernorAfterPass());
  }

  // Phase 3: verdict, in left-row order.
  enum class RowSource : uint8_t { kLeft, kMerged, kRight };
  struct OutRow {
    RowSource source;
    uint32_t src;   // left row (kLeft, kMerged) or right row (kRight)
    uint32_t pair;  // kMerged: index into the pair lists
  };
  std::vector<OutRow> out_rows;
  out_rows.reserve(n + right.size() - pairs);
  std::vector<SupportPair> pair_membership(pairs);
  size_t pair_index = 0;
  QueryContext* const ctx = CurrentQueryContext();
  for (size_t i = 0; i < n; ++i) {
    if (ctx != nullptr && (i + 1) % kGovernorTick == 0) {
      EVIDENT_RETURN_NOT_OK(ctx->PollTick());
    }
    if (match[i] == kNoMatch) {
      out_rows.push_back({RowSource::kLeft, static_cast<uint32_t>(i), 0});
      continue;
    }
    const size_t local = pair_index % kParallelGrain;
    const size_t right_row = match[i];
    bool skip = false;
    for (size_t a = 0; a < schema->size() && !skip; ++a) {
      const AttributeDef& attr = schema->attribute(a);
      switch (attr.kind) {
        case AttributeKind::kKey:
          break;
        case AttributeKind::kDefinite: {
          const Value& lv = left_store.value_column(a).values[i];
          const Value& rv = right_store.value_column(a).values[right_row];
          if (lv == rv) break;
          if (options.on_definite_conflict == DefiniteConflictPolicy::kError) {
            return Status::Incompatible(
                "definite attribute '" + attr.name + "' conflicts on key (" +
                KeyToString(KeyOfStoreRow(left_store, i)) + "): " +
                lv.ToString() + " vs " + rv.ToString() +
                "; attribute preprocessing should have aligned these");
          }
          // kPreferLeft/kPreferRight: the build pass picks the side.
          break;
        }
        case AttributeKind::kUncertain: {
          bool conflict;
          const int boxed_slot = boxed_slot_of_attr[a];
          if (boxed_slot < 0) {
            conflict = batches[batch_of_attr[a]]
                           .morsels[pair_index / kParallelGrain]
                           .total_conflict[local] != 0;
          } else {
            // Wide domain: row-store kernel, combined here (serially) so
            // the error/skip precedence stays in attribute order.
            Result<EvidenceSet> combined = CombineEvidenceTrusted(
                left_store.boxed_column(a).sets[i],
                right_store.boxed_column(a).sets[right_row], options.rule);
            if (combined.ok()) {
              boxed_results[boxed_slot][pair_index] =
                  std::move(combined).value();
              break;
            }
            if (combined.status().code() != StatusCode::kTotalConflict) {
              return combined.status();
            }
            conflict = true;
          }
          if (!conflict) break;
          switch (options.on_total_conflict) {
            case TotalConflictPolicy::kError:
              return Status::TotalConflict(
                  "attribute '" + attr.name + "' of key (" +
                  KeyToString(KeyOfStoreRow(left_store, i)) +
                  ") is totally conflicting between the sources: " +
                  left_store.MaterializeEvidence(a, i).ToString() + " vs " +
                  right_store.MaterializeEvidence(a, right_row).ToString() +
                  "; the data administrators must be informed");
            case TotalConflictPolicy::kSkipTuple:
              skip = true;
              break;
            case TotalConflictPolicy::kVacuous:
              // The build pass substitutes the vacuous span (packed) or
              // evidence set (boxed).
              if (boxed_slot >= 0) {
                boxed_results[boxed_slot][pair_index] =
                    EvidenceSet::Vacuous(attr.domain);
              }
              break;
          }
          break;
        }
      }
    }
    if (skip) {
      ++pair_index;
      continue;
    }

    Result<SupportPair> membership = CombineMembership(
        left_store.membership(i), right_store.membership(right_row),
        options.rule);
    if (!membership.ok()) {
      if (membership.status().code() != StatusCode::kTotalConflict) {
        return membership.status();
      }
      switch (options.on_total_conflict) {
        case TotalConflictPolicy::kError:
          return Status::TotalConflict(
              "membership of key (" +
              KeyToString(KeyOfStoreRow(left_store, i)) +
              ") is totally conflicting between the sources");
        case TotalConflictPolicy::kSkipTuple:
          ++pair_index;
          skip = true;
          break;
        case TotalConflictPolicy::kVacuous:
          membership = SupportPair::Unknown();
          break;
      }
      if (skip) continue;
    }
    pair_membership[pair_index] = *membership;
    out_rows.push_back({RowSource::kMerged, static_cast<uint32_t>(i),
                        static_cast<uint32_t>(pair_index)});
    ++pair_index;
  }
  {
    std::vector<uint8_t> matched_right(right.size(), 0);
    for (uint32_t j : pair_right) matched_right[j] = 1;
    for (size_t j = 0; j < right.size(); ++j) {
      if (!matched_right[j]) {
        out_rows.push_back({RowSource::kRight, static_cast<uint32_t>(j), 0});
      }
    }
  }
  if (merged_tags != nullptr) {
    merged_tags->clear();
    merged_tags->reserve(out_rows.size());
    for (const OutRow& row : out_rows) {
      merged_tags->push_back(row.source == RowSource::kMerged ? 1 : 0);
    }
  }

  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*schema, out_rows.size()));

  // Phase 4: build the output's column image.
  ColumnStore out = ColumnStore::EmptyLike(
      schema, left.name() + " u " + right.name());
  out.ReserveRows(out_rows.size());
  for (size_t a = 0; a < schema->size(); ++a) {
    const AttributeDef& attr = schema->attribute(a);
    switch (left_store.kind(a)) {
      case ColumnStore::ColumnKind::kValue: {
        const std::vector<Value>& lvals = left_store.value_column(a).values;
        const std::vector<Value>& rvals = right_store.value_column(a).values;
        // Merged definite cells take the left value unless the policy
        // prefers the right side *and* the cells actually conflict — on
        // equality the row path keeps the left cell, which matters for
        // cross-kind-equal values (int 1 vs real 1.0).
        const bool prefer_right =
            attr.kind == AttributeKind::kDefinite &&
            options.on_definite_conflict == DefiniteConflictPolicy::kPreferRight;
        std::vector<Value>& dst = out.value_column_mut(a).values;
        dst.reserve(out_rows.size());
        for (const OutRow& row : out_rows) {
          switch (row.source) {
            case RowSource::kLeft:
              dst.push_back(lvals[row.src]);
              break;
            case RowSource::kMerged: {
              const Value& lv = lvals[row.src];
              if (prefer_right) {
                const Value& rv = rvals[pair_right[row.pair]];
                dst.push_back(lv == rv ? lv : rv);
              } else {
                dst.push_back(lv);
              }
              break;
            }
            case RowSource::kRight:
              dst.push_back(rvals[row.src]);
              break;
          }
        }
        break;
      }
      case ColumnStore::ColumnKind::kEvidence: {
        const ColumnStore::EvidenceColumn& lcol =
            left_store.evidence_column(a);
        const ColumnStore::EvidenceColumn& rcol =
            right_store.evidence_column(a);
        const AttrBatch& batch = batches[batch_of_attr[a]];
        const uint64_t full = lcol.universe >= 64
                                  ? ~uint64_t{0}
                                  : (uint64_t{1} << lcol.universe) - 1;
        ColumnStore::EvidenceColumn& dst = out.evidence_column_mut(a);
        dst.words.reserve(lcol.words.size() + rcol.words.size());
        dst.masses.reserve(lcol.words.size() + rcol.words.size());
        dst.offsets.reserve(out_rows.size() + 1);
        for (const OutRow& row : out_rows) {
          switch (row.source) {
            case RowSource::kLeft:
              dst.AppendRowFrom(lcol, row.src);
              break;
            case RowSource::kRight:
              dst.AppendRowFrom(rcol, row.src);
              break;
            case RowSource::kMerged: {
              const size_t local = row.pair % kParallelGrain;
              const BatchCombineResult& result =
                  batch.morsels[row.pair / kParallelGrain];
              if (result.total_conflict[local]) {
                // Policy kVacuous (kError/kSkipTuple rows never reach the
                // build pass): total ignorance, all mass on the frame.
                dst.words.push_back(full);
                dst.masses.push_back(1.0);
                dst.offsets.push_back(
                    static_cast<uint32_t>(dst.words.size()));
              } else {
                const uint32_t first = result.offsets[local];
                const uint32_t last = result.offsets[local + 1];
                dst.words.insert(dst.words.end(),
                                 result.words.begin() + first,
                                 result.words.begin() + last);
                dst.masses.insert(dst.masses.end(),
                                  result.masses.begin() + first,
                                  result.masses.begin() + last);
                dst.offsets.push_back(
                    static_cast<uint32_t>(dst.words.size()));
              }
              break;
            }
          }
        }
        break;
      }
      case ColumnStore::ColumnKind::kBoxed: {
        const std::vector<EvidenceSet>& lsets =
            left_store.boxed_column(a).sets;
        const std::vector<EvidenceSet>& rsets =
            right_store.boxed_column(a).sets;
        std::vector<EvidenceSet>& dst = out.boxed_column_mut(a).sets;
        dst.reserve(out_rows.size());
        std::vector<std::optional<EvidenceSet>>& combined =
            boxed_results[boxed_slot_of_attr[a]];
        for (const OutRow& row : out_rows) {
          switch (row.source) {
            case RowSource::kLeft:
              dst.push_back(lsets[row.src]);
              break;
            case RowSource::kMerged:
              dst.push_back(std::move(*combined[row.pair]));
              break;
            case RowSource::kRight:
              dst.push_back(rsets[row.src]);
              break;
          }
        }
        break;
      }
    }
  }
  for (const OutRow& row : out_rows) {
    switch (row.source) {
      case RowSource::kLeft:
        out.AppendMembership(left_store.membership(row.src));
        break;
      case RowSource::kMerged:
        out.AppendMembership(pair_membership[row.pair]);
        break;
      case RowSource::kRight:
        out.AppendMembership(right_store.membership(row.src));
        break;
    }
  }
  return ExtendedRelation::AdoptColumns(std::move(out));
}

}  // namespace

Status CheckUnionCompatible(const ExtendedRelation& left,
                            const ExtendedRelation& right) {
  if (left.schema() == nullptr || right.schema() == nullptr) {
    return Status::InvalidArgument("union of relations without schemas");
  }
  if (!left.schema()->UnionCompatibleWith(*right.schema())) {
    return Status::Incompatible(
        "relations are not union-compatible: " + left.schema()->ToString() +
        " vs " + right.schema()->ToString());
  }
  return Status::OK();
}

Result<ExtendedRelation> Union(const ExtendedRelation& left,
                               const ExtendedRelation& right,
                               const UnionOptions& options) {
  EVIDENT_RETURN_NOT_OK(CheckUnionCompatible(left, right));
  if (ColumnarExecutionEnabled()) {
    return UnionColumnar(left, right, options, /*merged_tags=*/nullptr);
  }
  ExtendedRelation out(left.name() + " u " + right.name(), left.schema());
  out.Reserve(left.size() + right.size());
  return UnionRows(left, right, options, std::move(out));
}

Result<ExtendedRelation> Intersect(const ExtendedRelation& left,
                                   const ExtendedRelation& right,
                                   const UnionOptions& options) {
  EVIDENT_RETURN_NOT_OK(CheckUnionCompatible(left, right));
  if (ColumnarExecutionEnabled()) {
    // The union's probe pass already resolved which rows are merged
    // pairs, and "key in both sources" holds exactly for those: a
    // left-retained row's key missed the right index and a
    // right-retained row's key was never matched. Splice them out of the
    // union's column image — no re-encoding, no row materialization.
    std::vector<uint8_t> merged_tags;
    EVIDENT_ASSIGN_OR_RETURN(
        ExtendedRelation merged,
        UnionColumnar(left, right, options, &merged_tags));
    const ColumnStore& store = merged.columns();
    std::vector<uint32_t> keep;
    std::vector<SupportPair> memberships;
    for (size_t i = 0; i < merged_tags.size(); ++i) {
      if (!merged_tags[i]) continue;
      keep.push_back(static_cast<uint32_t>(i));
      memberships.push_back(store.membership(i));
    }
    EVIDENT_RETURN_NOT_OK(
        GovernorChargeOutput(*merged.schema(), keep.size()));
    return ExtendedRelation::AdoptColumns(SpliceKeptRows(
        store, left.name() + " n " + right.name(), keep, memberships));
  }
  EVIDENT_ASSIGN_OR_RETURN(ExtendedRelation merged,
                           Union(left, right, options));
  ExtendedRelation out(left.name() + " n " + right.name(), merged.schema());
  out.Reserve(merged.size());
  std::string key;
  for (const ExtendedTuple& t : merged.rows()) {
    merged.EncodeKeyOf(t, &key);
    if (left.ContainsEncodedKey(key) && right.ContainsEncodedKey(key)) {
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(t));
    }
  }
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*merged.schema(), out.size()));
  return out;
}

Result<ExtendedRelation> UnionAll(const std::vector<ExtendedRelation>& sources,
                                  const UnionOptions& options) {
  if (sources.empty()) {
    return Status::InvalidArgument("UnionAll over an empty source list");
  }
  ExtendedRelation acc = sources.front();
  for (size_t i = 1; i < sources.size(); ++i) {
    EVIDENT_ASSIGN_OR_RETURN(acc, Union(acc, sources[i], options));
  }
  return acc;
}

namespace {

/// Columnar extended projection: each picked column is spliced as one
/// whole-column copy (no combination, no per-row objects), dropped
/// columns are never touched. The row path's insert-time duplicate-key
/// guarantee is preserved by a uniqueness check over encoded keys —
/// reusing the input's cached encoded-key arena whenever the projection
/// keeps the key attributes in schema order (it always does for
/// engine-built projections, which prepend the keys), re-encoding off
/// the projected key columns otherwise.
Result<ExtendedRelation> ProjectColumnar(const ExtendedRelation& input,
                                         const std::vector<size_t>& indices,
                                         const SchemaPtr& schema) {
  const ColumnStore& store = input.columns();
  const size_t n = store.rows();
  ColumnStore out =
      ColumnStore::EmptyLike(schema, "project(" + input.name() + ")");
  out.ReserveRows(n);
  for (size_t a = 0; a < schema->size(); ++a) {
    const size_t src_attr = indices[a];
    switch (store.kind(src_attr)) {
      case ColumnStore::ColumnKind::kValue:
        out.value_column_mut(a).values = store.value_column(src_attr).values;
        break;
      case ColumnStore::ColumnKind::kEvidence: {
        const ColumnStore::EvidenceColumn& src =
            store.evidence_column(src_attr);
        ColumnStore::EvidenceColumn& dst = out.evidence_column_mut(a);
        dst.words = src.words;
        dst.masses = src.masses;
        dst.offsets = src.offsets;
        break;
      }
      case ColumnStore::ColumnKind::kBoxed:
        out.boxed_column_mut(a).sets = store.boxed_column(src_attr).sets;
        break;
    }
  }
  for (size_t r = 0; r < n; ++r) out.AppendMembership(store.membership(r));

  // Key-uniqueness check, mirroring the row path's insert-time duplicate
  // check (identical error message). Projections retain every key
  // attribute, so this can only fire on an input whose own keys were
  // corrupted — but the row path would report it, so this path must too.
  const bool same_key_order = [&] {
    const std::vector<size_t>& in_keys = input.schema()->key_indices();
    const std::vector<size_t>& out_keys = schema->key_indices();
    if (in_keys.size() != out_keys.size()) return false;
    for (size_t k = 0; k < out_keys.size(); ++k) {
      if (indices[out_keys[k]] != in_keys[k]) return false;
    }
    return true;
  }();
  EncodedKeyIndex unique;
  unique.Reserve(n);
  std::string scratch;
  for (size_t r = 0; r < n; ++r) {
    std::string_view key;
    if (same_key_order) {
      key = store.encoded_keys().key(r);
    } else {
      out.EncodeKeyOfRow(r, &scratch);
      key = scratch;
    }
    if (unique.Insert(key) != EncodedKeyIndex::kNoRow) {
      return MakeDuplicateKeyError(KeyOfStoreRow(out, r), out.name());
    }
  }
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*schema, n));
  return ExtendedRelation::AdoptColumns(std::move(out));
}

}  // namespace

Result<SchemaPtr> ResolveProjectionSchema(
    const RelationSchema& schema, const std::vector<std::string>& attributes,
    std::vector<size_t>* indices) {
  if (attributes.empty()) {
    return Status::InvalidArgument("projection list must be non-empty");
  }
  std::vector<AttributeDef> defs;
  std::unordered_set<std::string> chosen;
  for (const std::string& name : attributes) {
    EVIDENT_ASSIGN_OR_RETURN(size_t index, schema.IndexOf(name));
    if (!chosen.insert(name).second) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' appears twice in projection");
    }
    if (indices != nullptr) indices->push_back(index);
    defs.push_back(schema.attribute(index));
  }
  // The paper's projection keeps the key attributes (and always the
  // membership attribute), which also guarantees the projection needs no
  // duplicate elimination.
  for (size_t key_index : schema.key_indices()) {
    if (chosen.count(schema.attribute(key_index).name) == 0) {
      return Status::InvalidArgument(
          "projection must retain key attribute '" +
          schema.attribute(key_index).name + "'");
    }
  }
  return RelationSchema::Make(std::move(defs));
}

Result<ExtendedRelation> Project(const ExtendedRelation& input,
                                 const std::vector<std::string>& attributes) {
  if (input.schema() == nullptr) {
    return Status::InvalidArgument("projection of a relation without schema");
  }
  std::vector<size_t> indices;
  EVIDENT_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      ResolveProjectionSchema(*input.schema(), attributes, &indices));
  if (ColumnarExecutionEnabled()) {
    return ProjectColumnar(input, indices, schema);
  }
  ExtendedRelation out("project(" + input.name() + ")", schema);
  out.Reserve(input.size());
  for (const ExtendedTuple& r : input.rows()) {
    ExtendedTuple t;
    t.cells.reserve(indices.size());
    for (size_t index : indices) t.cells.push_back(r.cells[index]);
    t.membership = r.membership;
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(t)));
  }
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*schema, out.size()));
  return out;
}

Result<SchemaPtr> MakeProductSchema(const ExtendedRelation& left,
                                    const ExtendedRelation& right) {
  if (left.schema() == nullptr || right.schema() == nullptr) {
    return Status::InvalidArgument("product of relations without schemas");
  }
  // Concatenate the attribute lists, qualifying colliding names.
  std::unordered_set<std::string> left_names;
  for (const AttributeDef& a : left.schema()->attributes()) {
    left_names.insert(a.name);
  }
  std::vector<AttributeDef> defs;
  defs.reserve(left.schema()->size() + right.schema()->size());
  for (const AttributeDef& a : left.schema()->attributes()) {
    AttributeDef d = a;
    if (right.schema()->Has(a.name)) {
      if (left.name().empty() || left.name() == right.name()) {
        return Status::InvalidArgument(
            "attribute '" + a.name +
            "' appears in both operands and the relation names cannot "
            "disambiguate; rename it first");
      }
      d.name = left.name() + "." + a.name;
    }
    defs.push_back(std::move(d));
  }
  for (const AttributeDef& a : right.schema()->attributes()) {
    AttributeDef d = a;
    if (left_names.count(a.name) > 0) {
      if (right.name().empty() || left.name() == right.name()) {
        return Status::InvalidArgument(
            "attribute '" + a.name +
            "' appears in both operands and the relation names cannot "
            "disambiguate; rename it first");
      }
      d.name = right.name() + "." + a.name;
    }
    defs.push_back(std::move(d));
  }
  return RelationSchema::Make(std::move(defs));
}

namespace {

/// The focal-span arena reservation bound for the columnar splice paths:
/// the same 2^20 cap CappedProductReserve applies to row reservations.
/// Join/Product output arenas are sized from a *bound* (pairs x average
/// span), and a pathological high-match-rate join can push that bound
/// into the billions while the operands stay modest — reserve at most
/// this many entries and let the arena grow geometrically past it.
size_t CappedArenaReserve(size_t rows, size_t avg_span) {
  if (rows == 0) return 0;
  if (avg_span == 0) avg_span = 1;
  if (avg_span > kMaxReserveRows / rows) return kMaxReserveRows;
  return rows * avg_span;
}

/// Splices the output column image of a concatenated-pair operator
/// (Join, Product): output row i takes its left cells from `left_store`
/// row pair_left[i] and its right cells from `right_store` row
/// pair_right[i]; `memberships` supplies the revised membership per
/// pair. Key/definite columns are copied value-by-value, packed
/// uncertain columns have their (word, mass) focal spans repacked with
/// rebased offsets (EvidenceColumn::AppendRowFrom), boxed sets are shared — no row objects
/// exist at any point.
ColumnStore SplicePairColumns(const SchemaPtr& schema, std::string name,
                              const ColumnStore& left_store,
                              const ColumnStore& right_store,
                              const std::vector<uint32_t>& pair_left,
                              const std::vector<uint32_t>& pair_right,
                              const std::vector<SupportPair>& memberships) {
  const size_t n = pair_left.size();
  const size_t left_attrs = left_store.schema()->size();
  ColumnStore out = ColumnStore::EmptyLike(schema, std::move(name));
  out.ReserveRows(n);
  for (size_t a = 0; a < schema->size(); ++a) {
    const bool from_left = a < left_attrs;
    const ColumnStore& src_store = from_left ? left_store : right_store;
    const size_t src_attr = from_left ? a : a - left_attrs;
    const std::vector<uint32_t>& rows = from_left ? pair_left : pair_right;
    // The product schema qualifies colliding names but keeps kinds and
    // domains, so the output's column kinds equal the source's.
    switch (src_store.kind(src_attr)) {
      case ColumnStore::ColumnKind::kValue: {
        const std::vector<Value>& src =
            src_store.value_column(src_attr).values;
        std::vector<Value>& dst = out.value_column_mut(a).values;
        dst.reserve(n);
        for (uint32_t r : rows) dst.push_back(src[r]);
        break;
      }
      case ColumnStore::ColumnKind::kEvidence: {
        const ColumnStore::EvidenceColumn& src =
            src_store.evidence_column(src_attr);
        ColumnStore::EvidenceColumn& dst = out.evidence_column_mut(a);
        const size_t avg =
            src.words.size() / std::max<size_t>(src_store.rows(), 1);
        dst.words.reserve(CappedArenaReserve(n, avg + 1));
        dst.masses.reserve(CappedArenaReserve(n, avg + 1));
        dst.offsets.reserve(n + 1);
        for (uint32_t r : rows) dst.AppendRowFrom(src, r);
        break;
      }
      case ColumnStore::ColumnKind::kBoxed: {
        const std::vector<EvidenceSet>& src =
            src_store.boxed_column(src_attr).sets;
        std::vector<EvidenceSet>& dst = out.boxed_column_mut(a).sets;
        dst.reserve(n);
        for (uint32_t r : rows) dst.push_back(src[r]);
        break;
      }
    }
  }
  for (const SupportPair& m : memberships) out.AppendMembership(m);
  return out;
}

/// Hash of the definite cells at `indices` of store row `row`, mixed
/// exactly like RowKeyHash so the splice probe partitions identically.
uint64_t StoreKeyHash(const ColumnStore& store, size_t row,
                      const std::vector<size_t>& indices) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i : indices) {
    h ^= static_cast<uint64_t>(store.value_column(i).values[row].Hash()) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool StoreKeysEqual(const ColumnStore& a, size_t a_row,
                    const std::vector<size_t>& a_indices,
                    const ColumnStore& b, size_t b_row,
                    const std::vector<size_t>& b_indices) {
  for (size_t k = 0; k < a_indices.size(); ++k) {
    if (!(a.value_column(a_indices[k]).values[a_row] ==
          b.value_column(b_indices[k]).values[b_row])) {
      return false;
    }
  }
  return true;
}

/// The columnar splice form of the hash equi-join, taken when the
/// residual predicate binds completely (or is absent). Three phases over
/// the operands' column stores:
///
///  1. Build — the same open-addressing table as HashEquiJoin, keyed by
///     hashes taken straight off the contiguous key/definite value
///     columns (chains in ascending row order).
///  2. Probe — probe rows sharded across threads; each matched
///     (left, right) pair runs the bound residual column-at-a-time over
///     the packed spans (EvaluatePairColumns), computes the revised
///     membership, and survives CWA_ER + threshold filtering before
///     anything is allocated for it.
///  3. Splice — the surviving pairs' column slices are copied by span
///     into a fresh column image (SplicePairColumns) and adopted as a
///     columnar-mode relation.
///
/// Neither operand rows nor result rows are ever materialized, and the
/// pair emission order (probe rows ascending, build chains ascending,
/// morsels concatenated in order) is identical to the row path's, so the
/// result is bit-identical to HashEquiJoin for any thread count.
///
/// `probe_filter` (may be null) is the fused-pipeline probe: prefilter
/// conjuncts bound against the probe operand's schema, evaluated per
/// probe morsel over the shared column image while the build table is
/// warm; rows where any conjunct loses all support are never probed.
/// Identical to probing FilterPositiveSupport(probe, conjuncts) — the
/// per-row conjunct supports, surviving row order and memberships are
/// the same — without materializing the intermediate relation.
Result<ExtendedRelation> HashEquiJoinColumnarSplice(
    const ExtendedRelation& left, const ExtendedRelation& right,
    const JoinPlan& plan, const SchemaPtr& schema,
    const MembershipThreshold& threshold, const BoundPredicate* residual,
    const std::vector<BoundPredicate>* probe_filter, bool build_left,
    std::string name) {
  const ColumnStore& lstore = left.columns();
  const ColumnStore& rstore = right.columns();
  constexpr uint32_t kEmpty = std::numeric_limits<uint32_t>::max();
  const ColumnStore& build = build_left ? lstore : rstore;
  const ColumnStore& probe = build_left ? rstore : lstore;
  // The build pass hashes every build row, so the build image must be
  // fully verified. The probe side prunes partition-at-a-time when it
  // carries a fused prefilter: a partition some conjunct refutes would
  // see every row's filter support hit sn == 0 — those rows are marked
  // dropped up front and their bytes never touched (or verified).
  EVIDENT_RETURN_NOT_OK(build.EnsureAllVerified());
  std::vector<uint8_t> probe_pruned;
  if (probe_filter != nullptr) {
    EVIDENT_ASSIGN_OR_RETURN(
        probe_pruned, PruneAndVerifyPartitions(probe, [&](const auto& zone) {
          for (const BoundPredicate& conjunct : *probe_filter) {
            if (conjunct.RefutesPartition(zone)) return true;
          }
          return false;
        }));
  } else {
    EVIDENT_RETURN_NOT_OK(probe.EnsureAllVerified());
  }
  std::vector<size_t> build_indices, probe_indices;
  build_indices.reserve(plan.keys.size());
  probe_indices.reserve(plan.keys.size());
  for (const EquiKey& key : plan.keys) {
    build_indices.push_back(build_left ? key.left_index : key.right_index);
    probe_indices.push_back(build_left ? key.right_index : key.left_index);
  }

  const size_t build_size = build.rows();
  size_t capacity = 16;
  while (capacity < 2 * build_size) capacity <<= 1;
  const uint64_t mask = capacity - 1;
  std::vector<uint32_t> slot_row(capacity, kEmpty);  // first row of the key
  std::vector<uint32_t> chain(build_size, kEmpty);   // same-key successors
  std::vector<uint64_t> row_hash(build_size);
  for (size_t i = 0; i < build_size; ++i) {
    row_hash[i] = StoreKeyHash(build, i, build_indices);
  }
  // Insert rows in reverse: each insertion prepends to its key's chain,
  // so chains end up in ascending row order for deterministic probing.
  for (size_t i = build_size; i-- > 0;) {
    size_t s = row_hash[i] & mask;
    while (slot_row[s] != kEmpty &&
           !(row_hash[slot_row[s]] == row_hash[i] &&
             StoreKeysEqual(build, slot_row[s], build_indices, build, i,
                            build_indices))) {
      s = (s + 1) & mask;
    }
    if (slot_row[s] != kEmpty) chain[i] = slot_row[s];
    slot_row[s] = static_cast<uint32_t>(i);
  }

  struct MorselPairs {
    std::vector<uint32_t> pair_left, pair_right;
    std::vector<SupportPair> memberships;
  };
  const size_t morsel_count =
      ParallelMorselCount(probe.rows(), kParallelGrain);
  std::vector<MorselPairs> morsels(morsel_count);
  // Fused-probe scratch: morsels write disjoint absolute slices. Rows of
  // pruned probe partitions start dropped — exactly the flag the refuted
  // conjunct would have set — so the survivor charge below is unchanged.
  std::vector<SupportPair> filter_supports(
      probe_filter != nullptr ? probe.rows() : 0);
  std::vector<uint8_t> filter_drop =
      probe_pruned.empty()
          ? std::vector<uint8_t>(probe_filter != nullptr ? probe.rows() : 0, 0)
          : probe_pruned;
  ParallelForMorsels(
      probe.rows(), kParallelGrain,
      [&](size_t morsel, size_t begin, size_t end) {
        MorselPairs& out = morsels[morsel];
        if (probe_filter != nullptr) {
          for (const BoundPredicate& conjunct : *probe_filter) {
            EvaluateUnprunedRows(conjunct, probe, begin, end, probe_pruned,
                                 filter_supports.data());
            for (size_t p = begin; p < end; ++p) {
              if (filter_drop[p]) continue;
              if (!filter_supports[p].HasPositiveSupport()) {
                filter_drop[p] = 1;
              }
            }
          }
        }
        for (size_t p = begin; p < end; ++p) {
          if (probe_filter != nullptr && filter_drop[p]) continue;
          const uint64_t h = StoreKeyHash(probe, p, probe_indices);
          size_t s = h & mask;
          uint32_t head = kEmpty;
          while (slot_row[s] != kEmpty) {
            const uint32_t candidate = slot_row[s];
            if (row_hash[candidate] == h &&
                StoreKeysEqual(build, candidate, build_indices, probe, p,
                               probe_indices)) {
              head = candidate;
              break;
            }
            s = (s + 1) & mask;
          }
          for (uint32_t b = head; b != kEmpty; b = chain[b]) {
            const uint32_t l =
                build_left ? b : static_cast<uint32_t>(p);
            const uint32_t r =
                build_left ? static_cast<uint32_t>(p) : b;
            // The equi-conjuncts contribute exactly (1,1) on a match, so
            // the full predicate's support reduces to the residual's.
            SupportPair support = SupportPair::Certain();
            if (residual != nullptr) {
              support = residual->EvaluatePairColumns(lstore, l, rstore, r);
            }
            const SupportPair revised = lstore.membership(l)
                                            .Multiply(rstore.membership(r))
                                            .Multiply(support);
            if (!revised.HasPositiveSupport()) continue;  // CWA_ER.
            if (!threshold.Accepts(revised)) continue;
            out.pair_left.push_back(l);
            out.pair_right.push_back(r);
            out.memberships.push_back(revised);
          }
        }
        if (probe_filter == nullptr) {
          // Incremental row-cap charge at the mode-invariant emission
          // site (see HashEquiJoin). With a fused probe filter every
          // charge is deferred to the post-pass block below, where the
          // unfused filter-then-join sequence is replayed exactly.
          if (QueryContext* const ctx = CurrentQueryContext()) {
            (void)ctx->ChargeRows(out.pair_left.size());
          }
        }
      });
  EVIDENT_RETURN_NOT_OK(GovernorAfterPass());

  size_t total = 0;
  for (const MorselPairs& morsel : morsels) total += morsel.pair_left.size();
  if (QueryContext* const ctx = CurrentQueryContext()) {
    if (probe_filter != nullptr) {
      // The unfused plan materializes FilterPositiveSupport(probe) and
      // charges its survivors before the join's pair and memory charges;
      // replay that exact sequence so fusing the probe never changes
      // which limit trips (or its message).
      uint64_t survivors = 0;
      for (const uint8_t dropped : filter_drop) survivors += dropped == 0;
      EVIDENT_RETURN_NOT_OK(ctx->ChargeOutput(*probe.schema(), survivors));
      EVIDENT_RETURN_NOT_OK(ctx->ChargeRows(total));
    }
    EVIDENT_RETURN_NOT_OK(ctx->ChargeMemory(*schema, total));
  }
  std::vector<uint32_t> pair_left, pair_right;
  std::vector<SupportPair> memberships;
  pair_left.reserve(total);
  pair_right.reserve(total);
  memberships.reserve(total);
  for (const MorselPairs& morsel : morsels) {
    pair_left.insert(pair_left.end(), morsel.pair_left.begin(),
                     morsel.pair_left.end());
    pair_right.insert(pair_right.end(), morsel.pair_right.begin(),
                      morsel.pair_right.end());
    memberships.insert(memberships.end(), morsel.memberships.begin(),
                       morsel.memberships.end());
  }
  return ExtendedRelation::AdoptColumns(
      SplicePairColumns(schema, std::move(name), lstore, rstore, pair_left,
                        pair_right, memberships));
}

/// Columnar cartesian product: left columns repeat each row |R| times,
/// right columns tile |L| times, memberships are the F_TM products — in
/// the row path's left-major order, spliced straight into the output's
/// column image.
Result<ExtendedRelation> ProductColumnarSplice(const ExtendedRelation& left,
                                               const ExtendedRelation& right,
                                               const SchemaPtr& schema) {
  const ColumnStore& lstore = left.columns();
  const ColumnStore& rstore = right.columns();
  const size_t ln = lstore.rows();
  const size_t rn = rstore.rows();
  const size_t reserve = CappedProductReserve(ln, rn);
  std::vector<uint32_t> pair_left, pair_right;
  std::vector<SupportPair> memberships;
  pair_left.reserve(reserve);
  pair_right.reserve(reserve);
  memberships.reserve(reserve);
  // The governed tiling loop charges the row cap in kGovernorTick-sized
  // batches and polls the deadline with them: |L|·|R| can dwarf the
  // operand sizes, so a runaway product must trip mid-loop, not after
  // materializing everything. The row executor uses the identical
  // batching over the identical pair order.
  QueryContext* const ctx = CurrentQueryContext();
  uint64_t pending = 0;
  for (size_t i = 0; i < ln; ++i) {
    const SupportPair lm = lstore.membership(i);
    for (size_t j = 0; j < rn; ++j) {
      if (ctx != nullptr && ++pending == kGovernorTick) {
        EVIDENT_RETURN_NOT_OK(ctx->ChargeRows(pending));
        pending = 0;
        EVIDENT_RETURN_NOT_OK(ctx->PollTick());
      }
      pair_left.push_back(static_cast<uint32_t>(i));
      pair_right.push_back(static_cast<uint32_t>(j));
      memberships.push_back(lm.Multiply(rstore.membership(j)));  // F_TM
    }
  }
  if (ctx != nullptr) {
    EVIDENT_RETURN_NOT_OK(ctx->ChargeRows(pending));
    EVIDENT_RETURN_NOT_OK(
        ctx->ChargeMemory(*schema, static_cast<uint64_t>(ln) * rn));
  }
  return ExtendedRelation::AdoptColumns(SplicePairColumns(
      schema, left.name() + " x " + right.name(), lstore, rstore, pair_left,
      pair_right, memberships));
}

/// Product materialization over an already-built product schema, shared
/// by Product and the hash join's no-equi-conjunct fallback.
Result<ExtendedRelation> ProductWithSchema(const ExtendedRelation& left,
                                           const ExtendedRelation& right,
                                           const SchemaPtr& schema) {
  if (ColumnarExecutionEnabled()) {
    return ProductColumnarSplice(left, right, schema);
  }
  ExtendedRelation out(left.name() + " x " + right.name(), schema);
  out.Reserve(CappedProductReserve(left.size(), right.size()));
  // Same batched governor charges as ProductColumnarSplice, over the
  // identical pair order.
  QueryContext* const ctx = CurrentQueryContext();
  uint64_t pending = 0;
  for (const ExtendedTuple& r : left.rows()) {
    for (const ExtendedTuple& s : right.rows()) {
      if (ctx != nullptr && ++pending == kGovernorTick) {
        EVIDENT_RETURN_NOT_OK(ctx->ChargeRows(pending));
        pending = 0;
        EVIDENT_RETURN_NOT_OK(ctx->PollTick());
      }
      ExtendedTuple t;
      t.cells.reserve(r.cells.size() + s.cells.size());
      t.cells.insert(t.cells.end(), r.cells.begin(), r.cells.end());
      t.cells.insert(t.cells.end(), s.cells.begin(), s.cells.end());
      t.membership = r.membership.Multiply(s.membership);  // F_TM
      EVIDENT_RETURN_NOT_OK(out.InsertTrusted(std::move(t)));
    }
  }
  if (ctx != nullptr) {
    EVIDENT_RETURN_NOT_OK(ctx->ChargeRows(pending));
    EVIDENT_RETURN_NOT_OK(ctx->ChargeMemory(
        *schema, static_cast<uint64_t>(left.size()) * right.size()));
  }
  return out;
}

}  // namespace

Result<ExtendedRelation> Product(const ExtendedRelation& left,
                                 const ExtendedRelation& right) {
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, MakeProductSchema(left, right));
  return ProductWithSchema(left, right, schema);
}

Result<ExtendedRelation> Join(const ExtendedRelation& left,
                              const ExtendedRelation& right,
                              const PredicatePtr& predicate,
                              const MembershipThreshold& threshold) {
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, MakeProductSchema(left, right));
  return JoinWithProductSchema(left, right, predicate, threshold,
                               std::move(schema));
}

namespace {

/// The materializing fallback for a fused probe that cannot run in the
/// probe loop (row mode, interpreted residual, no equi-conjunct, unbound
/// conjunct): filter the probe side exactly as the unfused plan would
/// have, then join without fusion — identical semantics by construction.
Result<ExtendedRelation> JoinWithMaterializedProbe(
    const ExtendedRelation& left, const ExtendedRelation& right,
    const PredicatePtr& predicate, const MembershipThreshold& threshold,
    SchemaPtr schema, JoinBuildSide build_side, bool probe_is_left,
    const FusedJoinProbe& fused_probe) {
  EVIDENT_ASSIGN_OR_RETURN(
      ExtendedRelation filtered,
      FilterPositiveSupport(probe_is_left ? left : right,
                            fused_probe.conjuncts));
  return JoinWithProductSchema(probe_is_left ? filtered : left,
                               probe_is_left ? right : filtered, predicate,
                               threshold, std::move(schema), build_side);
}

}  // namespace

Result<ExtendedRelation> JoinWithProductSchema(
    const ExtendedRelation& left, const ExtendedRelation& right,
    const PredicatePtr& predicate, const MembershipThreshold& threshold,
    SchemaPtr schema, JoinBuildSide build_side,
    const FusedJoinProbe* fused_probe) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null selection predicate");
  }
  if (fused_probe != nullptr && build_side == JoinBuildSide::kAuto) {
    return Status::InvalidArgument(
        "a fused join probe requires an explicit build side");
  }
  const bool probe_is_left = build_side == JoinBuildSide::kRight;
  ExtendedRelation out("select(" + left.name() + " x " + right.name() + ")",
                       schema);
  if (left.empty() || right.empty()) {
    // The product is empty; selection over it never evaluates the
    // predicate, and neither do we.
    return out;
  }
  EVIDENT_ASSIGN_OR_RETURN(
      JoinPlan plan,
      AnalyzeJoinPredicate(predicate, *schema, left.schema()->size()));
  bool build_left;
  switch (build_side) {
    case JoinBuildSide::kAuto:
      build_left = left.size() < right.size();
      break;
    case JoinBuildSide::kLeft:
      build_left = true;
      break;
    case JoinBuildSide::kRight:
      build_left = false;
      break;
  }
  // The hash table stores row indices (and its empty-slot sentinel) in
  // uint32_t; a build operand at or beyond that bound — unreachable for
  // in-memory relations today — takes the materialized path rather than
  // silently aliasing rows.
  const bool table_fits =
      (build_left ? left.size() : right.size()) <
      static_cast<size_t>(std::numeric_limits<uint32_t>::max());
  if (plan.keys.empty() || !table_fits) {
    if (fused_probe != nullptr) {
      return JoinWithMaterializedProbe(left, right, predicate, threshold,
                                       std::move(schema), build_side,
                                       probe_is_left, *fused_probe);
    }
    // No definite equi-conjunct to partition on: the paper's definition,
    // σ̃ over the materialized product.
    EVIDENT_ASSIGN_OR_RETURN(ExtendedRelation product,
                             ProductWithSchema(left, right, schema));
    return Select(product, predicate, threshold);
  }
  if (ColumnarExecutionEnabled()) {
    // The splice path requires the residual to bind completely (then
    // evaluation cannot fail); interpreted residuals — which can error
    // per pair — keep the materializing executor below.
    BoundPredicate bound_residual;
    bool splice = plan.residual == nullptr;
    if (plan.residual != nullptr) {
      bound_residual = BoundPredicate::BindPair(plan.residual, schema,
                                                left.schema()->size());
      splice = bound_residual.fully_bound();
    }
    std::vector<BoundPredicate> probe_filter;
    if (splice && fused_probe != nullptr) {
      const ExtendedRelation& probe_rel = probe_is_left ? left : right;
      probe_filter.reserve(fused_probe->conjuncts.size());
      for (const PredicatePtr& conjunct : fused_probe->conjuncts) {
        probe_filter.push_back(
            BoundPredicate::Bind(conjunct, probe_rel.schema()));
        if (!probe_filter.back().fully_bound()) {
          splice = false;  // safety net; the optimizer only fuses bindables
          break;
        }
      }
    }
    if (splice) {
      return HashEquiJoinColumnarSplice(
          left, right, plan, schema, threshold,
          plan.residual != nullptr ? &bound_residual : nullptr,
          fused_probe != nullptr ? &probe_filter : nullptr, build_left,
          out.name());
    }
  }
  if (fused_probe != nullptr) {
    return JoinWithMaterializedProbe(left, right, predicate, threshold,
                                     std::move(schema), build_side,
                                     probe_is_left, *fused_probe);
  }
  return HashEquiJoin(left, right, plan, schema, threshold, build_left,
                      std::move(out));
}

Result<SchemaPtr> MakeMultiwayProductSchema(
    const std::vector<const ExtendedRelation*>& operands) {
  std::unordered_map<std::string, size_t> name_count;
  size_t total_attrs = 0;
  for (const ExtendedRelation* op : operands) {
    if (op->schema() == nullptr) {
      return Status::InvalidArgument("product of relations without schemas");
    }
    total_attrs += op->schema()->size();
    for (const AttributeDef& a : op->schema()->attributes()) {
      ++name_count[a.name];
    }
  }
  auto ambiguous = [](const std::string& name) {
    return Status::InvalidArgument(
        "attribute '" + name +
        "' appears in multiple operands and the relation names cannot "
        "disambiguate; rename it first");
  };
  std::unordered_set<std::string> used;
  used.reserve(total_attrs);
  std::vector<AttributeDef> defs;
  defs.reserve(total_attrs);
  for (const ExtendedRelation* op : operands) {
    for (const AttributeDef& a : op->schema()->attributes()) {
      AttributeDef d = a;
      if (name_count[a.name] > 1) {
        if (op->name().empty()) return ambiguous(a.name);
        d.name = op->name() + "." + a.name;
      }
      if (!used.insert(d.name).second) return ambiguous(a.name);
      defs.push_back(std::move(d));
    }
  }
  return RelationSchema::Make(std::move(defs));
}

namespace {

/// The n-way reference executor: materializes the flat product in
/// left-major (FROM) order — rightmost operand cycling fastest, exactly
/// like nested ProductWithSchema row loops — folding memberships
/// left-to-right, then selects with the full predicate. The flat schema
/// is built directly (iterated binary products would re-qualify names a
/// second time), so this IS the paper definition the fast path must be
/// bit-identical to.
Result<ExtendedRelation> MultiwayReferenceJoin(
    const std::vector<const ExtendedRelation*>& operands,
    const SchemaPtr& schema, const PredicatePtr& predicate,
    const MembershipThreshold& threshold, std::string product_name) {
  const size_t n_ops = operands.size();
  size_t total_attrs = 0;
  size_t bound = 1;
  for (const ExtendedRelation* op : operands) {
    total_attrs += op->schema()->size();
    bound = CappedProductReserve(bound, op->size());
  }
  ExtendedRelation product(std::move(product_name), schema);
  product.Reserve(bound);
  std::vector<size_t> idx(n_ops, 0);
  // The odometer enumerates the full cross product — the internal
  // reference materialization stays uncharged (the enumerate path's
  // intermediate match set has a different size, and only the final
  // operator output may be charged for mode parity), so the deadline
  // poll is what bounds a runaway product here.
  QueryContext* const ctx = CurrentQueryContext();
  uint64_t tick = 0;
  while (true) {
    if (ctx != nullptr && ++tick % kGovernorTick == 0) {
      EVIDENT_RETURN_NOT_OK(ctx->PollTick());
    }
    ExtendedTuple t;
    t.cells.reserve(total_attrs);
    for (size_t i = 0; i < n_ops; ++i) {
      const ExtendedTuple& r = operands[i]->row(idx[i]);
      t.cells.insert(t.cells.end(), r.cells.begin(), r.cells.end());
      t.membership = i == 0 ? r.membership
                            : t.membership.Multiply(r.membership);  // F_TM
    }
    EVIDENT_RETURN_NOT_OK(product.InsertTrusted(std::move(t)));
    size_t pos = n_ops;
    while (pos > 0 && ++idx[pos - 1] == operands[pos - 1]->size()) {
      idx[pos - 1] = 0;
      --pos;
    }
    if (pos == 0) break;
  }
  if (predicate == nullptr) {
    // The product IS the operator output here; with a predicate the
    // Select below charges the (mode-identical) final output instead.
    EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*schema, product.size()));
    return product;
  }
  return Select(product, predicate, threshold);
}

}  // namespace

Result<ExtendedRelation> MultiwayJoinProduct(
    const std::vector<const ExtendedRelation*>& operands,
    const SchemaPtr& product_schema, const PredicatePtr& predicate,
    const MembershipThreshold& threshold,
    const std::vector<size_t>& join_order) {
  const size_t n_ops = operands.size();
  if (n_ops < 2) {
    return Status::InvalidArgument(
        "multiway join needs at least two operands");
  }
  std::vector<size_t> order = join_order;
  if (order.empty()) {
    order.resize(n_ops);
    for (size_t i = 0; i < n_ops; ++i) order[i] = i;
  }
  {
    std::vector<bool> seen(n_ops, false);
    bool valid = order.size() == n_ops;
    for (size_t i : order) {
      if (!valid || i >= n_ops || seen[i]) {
        valid = false;
        break;
      }
      seen[i] = true;
    }
    if (!valid) {
      return Status::InvalidArgument(
          "join order is not a permutation of the operands");
    }
  }

  std::string product_name = operands[0]->name();
  for (size_t i = 1; i < n_ops; ++i) {
    product_name += " x " + operands[i]->name();
  }
  for (const ExtendedRelation* op : operands) {
    if (op->empty()) {
      // The product is empty; selection over it never evaluates the
      // predicate, and neither do we.
      return ExtendedRelation(predicate != nullptr
                                  ? "select(" + product_name + ")"
                                  : product_name,
                              product_schema);
    }
  }

  bool enumerate = ColumnarExecutionEnabled();
  if (enumerate && predicate != nullptr) {
    enumerate = BoundPredicate::Bind(predicate, product_schema).fully_bound();
  }
  // Match-set row ids are uint32; oversized operands — unreachable for
  // in-memory relations today — take the reference path.
  for (const ExtendedRelation* op : operands) {
    if (op->size() >=
        static_cast<size_t>(std::numeric_limits<uint32_t>::max())) {
      enumerate = false;
    }
  }
  if (!enumerate) {
    return MultiwayReferenceJoin(operands, product_schema, predicate,
                                 threshold, std::move(product_name));
  }

  std::vector<const ColumnStore*> stores;
  std::vector<size_t> attr_counts;
  stores.reserve(n_ops);
  attr_counts.reserve(n_ops);
  for (const ExtendedRelation* op : operands) {
    stores.push_back(&op->columns());
    attr_counts.push_back(op->schema()->size());
  }
  const std::vector<MultiJoinEdge> edges =
      AnalyzeMultiJoinEdges(predicate, *product_schema, attr_counts);

  // The match set: cols[k][t] is the row of operand order[k] in the t-th
  // surviving combination. Tuples stay sorted join_order-major because
  // every step visits them (and, within an equi step, each ascending
  // hash chain) in ascending order.
  constexpr uint32_t kEmptySlot = std::numeric_limits<uint32_t>::max();
  std::vector<std::vector<uint32_t>> cols(1);
  std::vector<size_t> pos_of_op(n_ops, 0);
  std::vector<bool> placed(n_ops, false);
  {
    const size_t first = order[0];
    cols[0].resize(stores[first]->rows());
    for (size_t r = 0; r < cols[0].size(); ++r) {
      cols[0][r] = static_cast<uint32_t>(r);
    }
    pos_of_op[first] = 0;
    placed[first] = true;
  }

  // Enumeration is serial and can visit far more combinations than it
  // keeps; poll the governed deadline every ~kGovernorTick visited
  // tuples. The intermediate match set is deliberately uncharged — see
  // MultiwayReferenceJoin — so only the polls bound a hostile shape.
  QueryContext* const query_ctx = CurrentQueryContext();
  uint64_t tick = 0;

  for (size_t k = 1; k < n_ops; ++k) {
    const size_t opj = order[k];
    const ColumnStore& bstore = *stores[opj];
    const size_t count = cols[0].size();
    // Edges connecting the incoming operand to the placed set: the
    // incoming side becomes the hash-build key, the placed side the
    // probe key (read through the match set's columns).
    std::vector<size_t> build_attrs;
    struct ProbeRef {
      const ColumnStore* store;
      size_t attr;
      size_t col;
    };
    std::vector<ProbeRef> probe_refs;
    for (const MultiJoinEdge& e : edges) {
      size_t local, other, other_attr;
      if (e.left_operand == opj && placed[e.right_operand]) {
        local = e.left_index;
        other = e.right_operand;
        other_attr = e.right_index;
      } else if (e.right_operand == opj && placed[e.left_operand]) {
        local = e.right_index;
        other = e.left_operand;
        other_attr = e.left_index;
      } else {
        continue;
      }
      build_attrs.push_back(local);
      probe_refs.push_back(ProbeRef{stores[other], other_attr,
                                    pos_of_op[other]});
    }

    std::vector<std::vector<uint32_t>> next(k + 1);
    const size_t bn = bstore.rows();
    if (build_attrs.empty()) {
      // No connecting edge: cross step.
      const size_t reserve = CappedProductReserve(count, bn);
      for (auto& col : next) col.reserve(reserve);
      for (size_t t = 0; t < count; ++t) {
        for (size_t r = 0; r < bn; ++r) {
          if (query_ctx != nullptr && ++tick % kGovernorTick == 0) {
            EVIDENT_RETURN_NOT_OK(query_ctx->PollTick());
          }
          for (size_t kk = 0; kk < k; ++kk) next[kk].push_back(cols[kk][t]);
          next[k].push_back(static_cast<uint32_t>(r));
        }
      }
    } else {
      // Hash the incoming operand on its edge attributes (chains kept
      // ascending by reverse insertion), probe with each match tuple.
      size_t capacity = 1;
      while (capacity < bn * 2) capacity <<= 1;
      const uint64_t mask = capacity - 1;
      std::vector<uint32_t> heads(capacity, kEmptySlot);
      std::vector<uint32_t> chain(bn, kEmptySlot);
      for (size_t r = bn; r-- > 0;) {
        const uint64_t h = StoreKeyHash(bstore, r, build_attrs);
        const size_t bucket = static_cast<size_t>(h & mask);
        chain[r] = heads[bucket];
        heads[bucket] = static_cast<uint32_t>(r);
      }
      for (size_t t = 0; t < count; ++t) {
        if (query_ctx != nullptr && ++tick % kGovernorTick == 0) {
          EVIDENT_RETURN_NOT_OK(query_ctx->PollTick());
        }
        // Probe hash mixed in build_attrs order, exactly like
        // StoreKeyHash, so equal keys land in the same bucket.
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (const ProbeRef& ref : probe_refs) {
          h ^= static_cast<uint64_t>(
                   ref.store->value_column(ref.attr)
                       .values[cols[ref.col][t]]
                       .Hash()) +
               0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        }
        for (uint32_t r = heads[static_cast<size_t>(h & mask)];
             r != kEmptySlot; r = chain[r]) {
          bool match = true;
          for (size_t kk = 0; kk < build_attrs.size(); ++kk) {
            const ProbeRef& ref = probe_refs[kk];
            if (!(bstore.value_column(build_attrs[kk]).values[r] ==
                  ref.store->value_column(ref.attr)
                      .values[cols[ref.col][t]])) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          for (size_t kk = 0; kk < k; ++kk) next[kk].push_back(cols[kk][t]);
          next[k].push_back(r);
        }
      }
    }
    cols = std::move(next);
    pos_of_op[opj] = k;
    placed[opj] = true;
  }

  // Restore left-major (FROM) order: the definition's row order, which
  // any join_order must reproduce.
  const size_t count = cols[0].size();
  std::vector<const std::vector<uint32_t>*> by_from(n_ops);
  for (size_t i = 0; i < n_ops; ++i) by_from[i] = &cols[pos_of_op[i]];
  std::vector<size_t> perm(count);
  for (size_t t = 0; t < count; ++t) perm[t] = t;
  std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    for (size_t i = 0; i < n_ops; ++i) {
      const uint32_t va = (*by_from[i])[a];
      const uint32_t vb = (*by_from[i])[b];
      if (va != vb) return va < vb;
    }
    return false;
  });

  ColumnStore out = ColumnStore::EmptyLike(product_schema, product_name);
  out.ReserveRows(count);
  size_t flat = 0;
  for (size_t i = 0; i < n_ops; ++i) {
    const ColumnStore& src_store = *stores[i];
    const std::vector<uint32_t>& rows_of = *by_from[i];
    for (size_t a = 0; a < attr_counts[i]; ++a, ++flat) {
      switch (src_store.kind(a)) {
        case ColumnStore::ColumnKind::kValue: {
          const std::vector<Value>& src = src_store.value_column(a).values;
          std::vector<Value>& dst = out.value_column_mut(flat).values;
          dst.reserve(count);
          for (size_t t : perm) dst.push_back(src[rows_of[t]]);
          break;
        }
        case ColumnStore::ColumnKind::kEvidence: {
          const ColumnStore::EvidenceColumn& src =
              src_store.evidence_column(a);
          ColumnStore::EvidenceColumn& dst = out.evidence_column_mut(flat);
          const size_t avg =
              src.words.size() / std::max<size_t>(src_store.rows(), 1);
          dst.words.reserve(CappedArenaReserve(count, avg + 1));
          dst.masses.reserve(CappedArenaReserve(count, avg + 1));
          dst.offsets.reserve(count + 1);
          for (size_t t : perm) dst.AppendRowFrom(src, rows_of[t]);
          break;
        }
        case ColumnStore::ColumnKind::kBoxed: {
          const std::vector<EvidenceSet>& src = src_store.boxed_column(a).sets;
          std::vector<EvidenceSet>& dst = out.boxed_column_mut(flat).sets;
          dst.reserve(count);
          for (size_t t : perm) dst.push_back(src[rows_of[t]]);
          break;
        }
      }
    }
  }
  for (size_t t : perm) {
    if (query_ctx != nullptr && ++tick % kGovernorTick == 0) {
      EVIDENT_RETURN_NOT_OK(query_ctx->PollTick());
    }
    SupportPair m = stores[0]->membership((*by_from[0])[t]);
    for (size_t i = 1; i < n_ops; ++i) {
      m = m.Multiply(stores[i]->membership((*by_from[i])[t]));  // F_TM
    }
    out.AppendMembership(m);
  }
  ExtendedRelation product = ExtendedRelation::AdoptColumns(std::move(out));
  if (predicate == nullptr) {
    // Pure product: no edges bind, so the enumerate and reference paths
    // materialize the identical full cross — charge it as the operator
    // output (see MultiwayReferenceJoin for the with-predicate case).
    EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*product_schema, count));
    return product;
  }
  return Select(product, predicate, threshold);
}

Result<ExtendedRelation> RenameAttribute(const ExtendedRelation& input,
                                         const std::string& from,
                                         const std::string& to) {
  if (input.schema() == nullptr) {
    return Status::InvalidArgument("rename on a relation without schema");
  }
  EVIDENT_ASSIGN_OR_RETURN(size_t index, input.schema()->IndexOf(from));
  if (input.schema()->Has(to)) {
    return Status::AlreadyExists("attribute '" + to + "' already exists");
  }
  std::vector<AttributeDef> defs = input.schema()->attributes();
  defs[index].name = to;
  EVIDENT_ASSIGN_OR_RETURN(SchemaPtr schema, RelationSchema::Make(defs));
  // The logical charge model bills the renamed output in both modes even
  // though the columnar path adopts the image zero-copy: charges must
  // depend on the logical plan, not the storage layout.
  EVIDENT_RETURN_NOT_OK(GovernorChargeOutput(*schema, input.size()));
  if (ColumnarExecutionEnabled()) {
    // A rename changes no cell: adopt the operand's column image under
    // the renamed schema (same attribute kinds and domains, so the
    // column layout is identical) without materializing a single row.
    return ExtendedRelation::AdoptColumns(
        ColumnStore::WithSchema(input.columns(), schema, input.name()));
  }
  ExtendedRelation out(input.name(), schema);
  out.Reserve(input.size());
  for (const ExtendedTuple& r : input.rows()) {
    EVIDENT_RETURN_NOT_OK(out.InsertTrusted(r));
  }
  return out;
}

}  // namespace evident
