#ifndef EVIDENT_CORE_PREDICATE_H_
#define EVIDENT_CORE_PREDICATE_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "core/schema.h"
#include "core/support_pair.h"
#include "core/tuple.h"
#include "ds/evidence_set.h"

namespace evident {

/// \brief Comparison operator of a θ-predicate; the paper's θ ∈
/// {=, >, <, ≥, ≤}.
enum class ThetaOp { kEq, kLt, kLe, kGt, kGe };

const char* ThetaOpToString(ThetaOp op);

/// \brief Applies `op` to two definite values under the Value total
/// order.
bool ApplyThetaOp(const Value& a, ThetaOp op, const Value& b);

/// \brief A selection/join condition evaluated to a support pair by the
/// paper's F_SS (§3.1.1).
///
/// Concrete predicates are IsPredicate (A is {c1..cn}), ThetaPredicate
/// (A θ B over evidence sets) and AndPredicate (conjunction under the
/// multiplicative rule). Predicates are immutable and shared.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// \brief F_SS: the (sn, sp) support the tuple gives this condition.
  virtual Result<SupportPair> Evaluate(const ExtendedTuple& tuple,
                                       const RelationSchema& schema) const = 0;

  /// \brief Paper-style rendering, e.g. "speciality is {si}".
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// \brief "A is {c1, ..., cn}": support is (Bel(C), Pls(C)) of the
/// attribute's evidence set on the named subset C.
///
/// On a definite attribute the support degenerates to (1,1) when the
/// stored value is in C and (0,0) otherwise.
class IsPredicate : public Predicate {
 public:
  IsPredicate(std::string attribute, std::vector<Value> values)
      : attribute_(std::move(attribute)), values_(std::move(values)) {}

  const std::string& attribute() const { return attribute_; }
  const std::vector<Value>& values() const { return values_; }

  Result<SupportPair> Evaluate(const ExtendedTuple& tuple,
                               const RelationSchema& schema) const override;
  std::string ToString() const override;

 private:
  std::string attribute_;
  std::vector<Value> values_;
};

/// \brief One side of a θ-predicate: an attribute reference or a literal
/// evidence set (the paper's example compares two literal evidence sets).
class ThetaOperand {
 public:
  /// \brief References the attribute named `name`.
  static ThetaOperand Attr(std::string name) {
    return ThetaOperand(std::move(name));
  }
  /// \brief A literal evidence set.
  static ThetaOperand Lit(EvidenceSet es) { return ThetaOperand(std::move(es)); }
  /// \brief A literal definite value (singleton evidence).
  static ThetaOperand LitValue(const Value& v) { return ThetaOperand(v); }

  bool is_attribute() const { return rep_.index() == 0; }
  const std::string& attribute() const { return std::get<std::string>(rep_); }
  /// \name Literal accessors, used by the predicate binder to
  /// pre-decompose literal operands once per operator call.
  /// @{
  bool is_literal_evidence() const { return rep_.index() == 1; }
  const EvidenceSet& literal_evidence() const {
    return std::get<EvidenceSet>(rep_);
  }
  bool is_literal_value() const { return rep_.index() == 2; }
  const Value& literal_value() const { return std::get<Value>(rep_); }
  /// @}

  /// \brief Decomposes the operand (resolving attribute references
  /// against the tuple) into focal elements: (set-of-values, mass) pairs.
  Result<std::vector<std::pair<std::vector<Value>, double>>> Decompose(
      const ExtendedTuple& tuple, const RelationSchema& schema) const;

  std::string ToString() const;

 private:
  explicit ThetaOperand(std::string attr) : rep_(std::move(attr)) {}
  explicit ThetaOperand(EvidenceSet es) : rep_(std::move(es)) {}
  explicit ThetaOperand(Value v) : rep_(std::move(v)) {}

  std::variant<std::string, EvidenceSet, Value> rep_;
};

/// \brief When is "a_i θ b_j" *necessarily* TRUE for focal elements a_i,
/// b_j (sets of values)?
///
/// The paper's formal definition (§3.1.1) reads ∀s∀t — every element
/// pair must satisfy θ. Its worked example, however, evaluates
/// [{1,4}^0.6, {2,6}^0.4] ≤ [{2,4}^0.8, 5^0.2] to (sn=0.6, sp=1), which
/// is inconsistent with ∀s∀t (that yields sn=0.12) and matches ∀s∃t —
/// every element of a_i has some element of b_j satisfying θ. We default
/// to the example's semantics so the published numbers reproduce, and
/// offer the strict reading as an option. "May be TRUE" (the sp side) is
/// ∃s∃t under both.
enum class ThetaSemantics {
  /// ∀s∃t — matches the paper's worked example (the default).
  kForallExists,
  /// ∀s∀t — the paper's formal definition as printed.
  kForallForall,
};

/// \brief "A θ B" over evidence sets: sn sums the mass products of focal
/// pairs for which the comparison necessarily holds (per the chosen
/// ThetaSemantics); sp sums those for which it possibly holds (some
/// element pair satisfies θ).
class ThetaPredicate : public Predicate {
 public:
  ThetaPredicate(ThetaOperand lhs, ThetaOp op, ThetaOperand rhs,
                 ThetaSemantics semantics = ThetaSemantics::kForallExists)
      : lhs_(std::move(lhs)),
        op_(op),
        rhs_(std::move(rhs)),
        semantics_(semantics) {}

  /// \name Structural accessors, used by the join planner to recognize
  /// equi-conjuncts without re-parsing ToString().
  /// @{
  const ThetaOperand& lhs() const { return lhs_; }
  ThetaOp op() const { return op_; }
  const ThetaOperand& rhs() const { return rhs_; }
  ThetaSemantics semantics() const { return semantics_; }
  /// @}

  Result<SupportPair> Evaluate(const ExtendedTuple& tuple,
                               const RelationSchema& schema) const override;
  std::string ToString() const override;

 private:
  ThetaOperand lhs_;
  ThetaOp op_;
  ThetaOperand rhs_;
  ThetaSemantics semantics_;
};

/// \brief Conjunction of mutually independent predicates; the support is
/// the component-wise product of the children's supports (the
/// multiplicative rule of Baldwin / Hau-Kashyap the paper adopts).
class AndPredicate : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  const std::vector<PredicatePtr>& children() const { return children_; }

  Result<SupportPair> Evaluate(const ExtendedTuple& tuple,
                               const RelationSchema& schema) const override;
  std::string ToString() const override;

 private:
  std::vector<PredicatePtr> children_;
};

/// \name Convenience factories.
/// @{
PredicatePtr Is(std::string attribute, std::vector<Value> values);
/// \brief Is-predicate over symbol names.
PredicatePtr IsSym(std::string attribute,
                   const std::vector<std::string>& symbols);
PredicatePtr Theta(ThetaOperand lhs, ThetaOp op, ThetaOperand rhs,
                   ThetaSemantics semantics = ThetaSemantics::kForallExists);
PredicatePtr And(std::vector<PredicatePtr> children);
PredicatePtr And(PredicatePtr a, PredicatePtr b);
/// @}

}  // namespace evident

#endif  // EVIDENT_CORE_PREDICATE_H_
