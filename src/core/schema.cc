#include "core/schema.h"

#include <sstream>
#include <unordered_set>

namespace evident {

const char* AttributeKindToString(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kKey:
      return "key";
    case AttributeKind::kDefinite:
      return "definite";
    case AttributeKind::kUncertain:
      return "uncertain";
  }
  return "unknown";
}

RelationSchema::RelationSchema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i].name, i);
    if (attributes_[i].is_key()) {
      key_indices_.push_back(i);
    } else {
      nonkey_indices_.push_back(i);
    }
  }
}

Result<std::shared_ptr<const RelationSchema>> RelationSchema::Make(
    std::vector<AttributeDef> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema must have at least one attribute");
  }
  std::unordered_set<std::string> names;
  bool has_key = false;
  for (const AttributeDef& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    if (!names.insert(attr.name).second) {
      return Status::AlreadyExists("duplicate attribute '" + attr.name + "'");
    }
    if (attr.is_key()) has_key = true;
    if (attr.is_uncertain() && attr.domain == nullptr) {
      return Status::InvalidArgument("uncertain attribute '" + attr.name +
                                     "' must declare a domain");
    }
  }
  if (!has_key) {
    return Status::InvalidArgument(
        "schema must have at least one key attribute (extended relations "
        "have definite keys)");
  }
  return std::shared_ptr<const RelationSchema>(
      new RelationSchema(std::move(attributes)));
}

Result<size_t> RelationSchema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no attribute '" + name + "' in schema " +
                            ToString());
  }
  return it->second;
}

bool RelationSchema::Has(const std::string& name) const {
  return index_.count(name) > 0;
}

bool RelationSchema::UnionCompatibleWith(const RelationSchema& other) const {
  return Equals(other);
}

bool RelationSchema::Equals(const RelationSchema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (!attributes_[i].Equals(other.attributes_[i])) return false;
  }
  return true;
}

std::string RelationSchema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i) os << ", ";
    if (attributes_[i].is_uncertain()) os << "†";
    os << attributes_[i].name;
    if (attributes_[i].is_key()) os << "*";
  }
  os << ")";
  return os.str();
}

}  // namespace evident
