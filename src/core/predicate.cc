#include "core/predicate.h"

#include <sstream>

#include "common/math_util.h"

namespace evident {

const char* ThetaOpToString(ThetaOp op) {
  switch (op) {
    case ThetaOp::kEq:
      return "=";
    case ThetaOp::kLt:
      return "<";
    case ThetaOp::kLe:
      return "<=";
    case ThetaOp::kGt:
      return ">";
    case ThetaOp::kGe:
      return ">=";
  }
  return "?";
}

bool ApplyThetaOp(const Value& a, ThetaOp op, const Value& b) {
  switch (op) {
    case ThetaOp::kEq:
      return a == b;
    case ThetaOp::kLt:
      return a < b;
    case ThetaOp::kLe:
      return a <= b;
    case ThetaOp::kGt:
      return a > b;
    case ThetaOp::kGe:
      return a >= b;
  }
  return false;
}

// ---------------------------------------------------------------------------
// IsPredicate

Result<SupportPair> IsPredicate::Evaluate(const ExtendedTuple& tuple,
                                          const RelationSchema& schema) const {
  EVIDENT_ASSIGN_OR_RETURN(size_t index, schema.IndexOf(attribute_));
  const Cell& cell = tuple.cells[index];
  if (CellIsValue(cell)) {
    // Definite attribute: the predicate holds with certainty iff the
    // stored value is among the named constants.
    const Value& stored = std::get<Value>(cell);
    for (const Value& c : values_) {
      if (stored == c) return SupportPair::Certain();
    }
    return SupportPair::Impossible();
  }
  const EvidenceSet& es = std::get<EvidenceSet>(cell);
  // Per the paper, the constants c_i must come from the attribute's
  // domain; values outside the frame are an error rather than silently
  // contributing zero belief.
  EVIDENT_ASSIGN_OR_RETURN(ValueSet set, es.SetOf(values_));
  return SupportPair{es.mass().Belief(set), es.mass().Plausibility(set)};
}

std::string IsPredicate::ToString() const {
  std::ostringstream os;
  os << attribute_ << " is {";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) os << ",";
    os << values_[i];
  }
  os << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// ThetaOperand

Result<std::vector<std::pair<std::vector<Value>, double>>>
ThetaOperand::Decompose(const ExtendedTuple& tuple,
                        const RelationSchema& schema) const {
  std::vector<std::pair<std::vector<Value>, double>> out;
  if (rep_.index() == 2) {  // literal definite value
    out.push_back({{std::get<Value>(rep_)}, 1.0});
    return out;
  }
  if (rep_.index() == 1) {  // literal evidence set
    const EvidenceSet& es = std::get<EvidenceSet>(rep_);
    for (const auto& [set, mass] : es.mass().SortedFocals()) {
      out.push_back({es.ValuesOf(set), mass});
    }
    return out;
  }
  const std::string& name = std::get<std::string>(rep_);
  EVIDENT_ASSIGN_OR_RETURN(size_t index, schema.IndexOf(name));
  const Cell& cell = tuple.cells[index];
  if (CellIsValue(cell)) {
    out.push_back({{std::get<Value>(cell)}, 1.0});
    return out;
  }
  const EvidenceSet& es = std::get<EvidenceSet>(cell);
  for (const auto& [set, mass] : es.mass().SortedFocals()) {
    out.push_back({es.ValuesOf(set), mass});
  }
  return out;
}

std::string ThetaOperand::ToString() const {
  switch (rep_.index()) {
    case 0:
      return std::get<std::string>(rep_);
    case 1:
      return std::get<EvidenceSet>(rep_).ToString();
    case 2:
      return std::get<Value>(rep_).ToString();
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ThetaPredicate

Result<SupportPair> ThetaPredicate::Evaluate(
    const ExtendedTuple& tuple, const RelationSchema& schema) const {
  EVIDENT_ASSIGN_OR_RETURN(auto lhs_focals, lhs_.Decompose(tuple, schema));
  EVIDENT_ASSIGN_OR_RETURN(auto rhs_focals, rhs_.Decompose(tuple, schema));
  double sn = 0.0;
  double sp = 0.0;
  for (const auto& [a_values, a_mass] : lhs_focals) {
    for (const auto& [b_values, b_mass] : rhs_focals) {
      // Necessity per the configured semantics (see ThetaSemantics);
      // "may be TRUE" is ∃s∃t under both (§3.1.1).
      bool necessary = !a_values.empty() && !b_values.empty();
      bool some = false;
      for (const Value& a : a_values) {
        bool exists_for_a = false;
        bool all_for_a = true;
        for (const Value& b : b_values) {
          if (ApplyThetaOp(a, op_, b)) {
            some = true;
            exists_for_a = true;
          } else {
            all_for_a = false;
          }
        }
        const bool a_ok = semantics_ == ThetaSemantics::kForallExists
                              ? exists_for_a
                              : all_for_a;
        if (!a_ok) necessary = false;
      }
      const double product = a_mass * b_mass;
      if (necessary) sn += product;
      if (some) sp += product;
    }
  }
  return SupportPair{ClampUnit(sn), ClampUnit(sp)};
}

std::string ThetaPredicate::ToString() const {
  return lhs_.ToString() + " " + ThetaOpToString(op_) + " " + rhs_.ToString();
}

// ---------------------------------------------------------------------------
// AndPredicate

Result<SupportPair> AndPredicate::Evaluate(
    const ExtendedTuple& tuple, const RelationSchema& schema) const {
  if (children_.empty()) {
    return Status::InvalidArgument("empty conjunction");
  }
  SupportPair acc = SupportPair::Certain();
  for (const PredicatePtr& child : children_) {
    EVIDENT_ASSIGN_OR_RETURN(SupportPair s, child->Evaluate(tuple, schema));
    acc = acc.Multiply(s);
  }
  return acc;
}

std::string AndPredicate::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i) os << ") and (";
    os << children_[i]->ToString();
  }
  os << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Factories

PredicatePtr Is(std::string attribute, std::vector<Value> values) {
  return std::make_shared<IsPredicate>(std::move(attribute),
                                       std::move(values));
}

PredicatePtr IsSym(std::string attribute,
                   const std::vector<std::string>& symbols) {
  std::vector<Value> values;
  values.reserve(symbols.size());
  for (const std::string& s : symbols) values.emplace_back(s);
  return Is(std::move(attribute), std::move(values));
}

PredicatePtr Theta(ThetaOperand lhs, ThetaOp op, ThetaOperand rhs,
                   ThetaSemantics semantics) {
  return std::make_shared<ThetaPredicate>(std::move(lhs), op, std::move(rhs),
                                          semantics);
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_shared<AndPredicate>(std::move(children));
}

PredicatePtr And(PredicatePtr a, PredicatePtr b) {
  return And(std::vector<PredicatePtr>{std::move(a), std::move(b)});
}

}  // namespace evident
