#ifndef EVIDENT_CORE_SCHEMA_H_
#define EVIDENT_CORE_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/attribute.h"

namespace evident {

/// \brief The schema of an extended relation: an ordered list of
/// attributes of which at least one is a (definite) key.
///
/// The tuple membership attribute (sn, sp) is implicit — every extended
/// relation carries it and it does not appear in the attribute list,
/// matching the paper where it is "an additional attribute".
class RelationSchema {
 public:
  /// \brief Validates and builds a schema: non-empty, unique names, at
  /// least one key, uncertain attributes carry domains.
  static Result<std::shared_ptr<const RelationSchema>> Make(
      std::vector<AttributeDef> attributes);

  size_t size() const { return attributes_.size(); }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  /// \brief Index of the attribute named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// \brief Indices of key attributes, in schema order.
  const std::vector<size_t>& key_indices() const { return key_indices_; }
  /// \brief Indices of non-key attributes, in schema order.
  const std::vector<size_t>& nonkey_indices() const { return nonkey_indices_; }

  /// \brief Union compatibility per the paper: same attribute list
  /// (names, kinds, domains) including the same keys.
  bool UnionCompatibleWith(const RelationSchema& other) const;

  bool Equals(const RelationSchema& other) const;

  /// \brief "(rname*, street, †speciality, ...)" where * marks keys and
  /// † marks uncertain attributes.
  std::string ToString() const;

 private:
  explicit RelationSchema(std::vector<AttributeDef> attributes);

  std::vector<AttributeDef> attributes_;
  std::vector<size_t> key_indices_;
  std::vector<size_t> nonkey_indices_;
  std::unordered_map<std::string, size_t> index_;
};

using SchemaPtr = std::shared_ptr<const RelationSchema>;

}  // namespace evident

#endif  // EVIDENT_CORE_SCHEMA_H_
