#ifndef EVIDENT_CORE_COLUMN_SPAN_H_
#define EVIDENT_CORE_COLUMN_SPAN_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace evident {

/// \brief A column array that either owns a std::vector<T> or borrows a
/// read-only span of externally owned memory (an mmap'ed column image),
/// behind one reader API — so the scan kernels, the splice primitives
/// and the serializers never branch on where the bytes live.
///
/// Borrowed spans carry a shared keepalive (typically the MappedFile
/// holding the bytes); copying a borrowed span shares the pointer and
/// keepalive instead of copying the data, which is what makes whole-
/// column adoption by the operators (project's column reuse) zero-copy.
/// Any mutating call on a borrowed span first detaches it into an owned
/// copy (copy-on-write) — borrowed bytes are never written through.
///
/// Readers get only const access (data()/operator[]/begin()/end() are
/// const T*): the trivially-copyable element types this is used with
/// (uint32_t/uint64_t/double) are exactly the ones a mapped file can
/// legally alias, provided the file offset of the borrowed bytes is
/// aligned to alignof(T) — the EVCIMG03 writer pads numeric arrays to
/// 8-byte file offsets for this reason.
template <typename T>
class ColumnSpan {
 public:
  ColumnSpan() = default;
  ColumnSpan(std::initializer_list<T> init) : own_(init) { Rebind(); }
  explicit ColumnSpan(std::vector<T> v) : own_(std::move(v)) { Rebind(); }

  /// A span over `[data, data + size)` kept alive by `backing`; the
  /// caller guarantees `data` is alignof(T)-aligned for the lifetime of
  /// `backing`.
  static ColumnSpan Borrow(const T* data, size_t size,
                           std::shared_ptr<const void> backing) {
    ColumnSpan s;
    s.data_ = data;
    s.size_ = size;
    s.backing_ = std::move(backing);
    return s;
  }

  ColumnSpan(const ColumnSpan& other) { CopyFrom(other); }
  ColumnSpan& operator=(const ColumnSpan& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  ColumnSpan(ColumnSpan&& other) noexcept { MoveFrom(std::move(other)); }
  ColumnSpan& operator=(ColumnSpan&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }
  ColumnSpan& operator=(std::initializer_list<T> init) {
    backing_.reset();
    own_.assign(init);
    Rebind();
    return *this;
  }
  ColumnSpan& operator=(std::vector<T> v) {
    backing_.reset();
    own_ = std::move(v);
    Rebind();
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }
  bool borrowed() const { return backing_ != nullptr; }

  void clear() {
    backing_.reset();
    own_.clear();
    Rebind();
  }
  void reserve(size_t n) {
    EnsureOwned();
    own_.reserve(n);
    Rebind();
  }
  void resize(size_t n, T value = T()) {
    EnsureOwned();
    own_.resize(n, value);
    Rebind();
  }
  void push_back(T value) {
    EnsureOwned();
    own_.push_back(value);
    Rebind();
  }
  /// Append-only insert (the splice primitives' pattern); `pos` must be
  /// end().
  template <typename It>
  void insert(const T* pos, It first, It last) {
    (void)pos;  // always an append: pos == end() by contract
    EnsureOwned();
    own_.insert(own_.end(), first, last);
    Rebind();
  }

 private:
  void Rebind() {
    data_ = own_.data();
    size_ = own_.size();
  }
  void EnsureOwned() {
    if (backing_ == nullptr) return;
    own_.assign(data_, data_ + size_);
    backing_.reset();
    Rebind();
  }
  void CopyFrom(const ColumnSpan& other) {
    if (other.backing_ != nullptr) {
      // Borrowed source: share the bytes and the keepalive.
      own_.clear();
      data_ = other.data_;
      size_ = other.size_;
      backing_ = other.backing_;
    } else {
      backing_.reset();
      own_ = other.own_;
      Rebind();
    }
  }
  void MoveFrom(ColumnSpan&& other) {
    own_ = std::move(other.own_);
    backing_ = std::move(other.backing_);
    if (backing_ != nullptr) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      Rebind();
    }
    other.clear();
  }

  std::vector<T> own_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  std::shared_ptr<const void> backing_;  // non-null iff borrowed
};

}  // namespace evident

#endif  // EVIDENT_CORE_COLUMN_SPAN_H_
