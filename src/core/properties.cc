#include "core/properties.h"

#include "common/rng.h"

namespace evident {

Status CheckClosureProperty(const ExtendedRelation& relation) {
  for (size_t i = 0; i < relation.size(); ++i) {
    if (!relation.row(i).membership.HasPositiveSupport()) {
      return Status::OutOfRange(
          "closure property violated: tuple #" + std::to_string(i) +
          " of '" + relation.name() + "' has membership " +
          relation.row(i).membership.ToString());
    }
  }
  return Status::OK();
}

Result<ExtendedRelation> MakeComplementSample(const ExtendedRelation& relation,
                                              size_t count, uint64_t seed,
                                              const std::string& key_tag) {
  if (relation.schema() == nullptr) {
    return Status::InvalidArgument("complement of a relation without schema");
  }
  Rng rng(seed);
  ExtendedRelation out("~" + relation.name(), relation.schema());
  for (size_t i = 0; i < count; ++i) {
    ExtendedTuple t;
    t.cells.resize(relation.schema()->size());
    for (size_t c = 0; c < relation.schema()->size(); ++c) {
      const AttributeDef& attr = relation.schema()->attribute(c);
      switch (attr.kind) {
        case AttributeKind::kKey:
          // Fresh keys: the "~<tag>#<i>" namespace cannot collide with
          // stored keys, which tests ensure never use it. Integer-keyed
          // schemas would need the same convention; the string form works
          // because keys are free-typed Values.
          t.cells[c] = Value("~" + key_tag + "#" + std::to_string(i));
          break;
        case AttributeKind::kDefinite:
          if (attr.domain != nullptr) {
            t.cells[c] =
                attr.domain->value(rng.Below(attr.domain->size()));
          } else {
            t.cells[c] = Value("hyp-" + std::to_string(rng.Below(1000)));
          }
          break;
        case AttributeKind::kUncertain:
          t.cells[c] = EvidenceSet::Vacuous(attr.domain);
          break;
      }
    }
    // No necessary support; possible support is arbitrary (CWA_ER only
    // pins sn to 0 for absent tuples).
    t.membership = SupportPair{0.0, rng.NextDouble()};
    EVIDENT_RETURN_NOT_OK(out.InsertUnchecked(std::move(t)));
  }
  return out;
}

Result<ExtendedRelation> UnionWithComplement(
    const ExtendedRelation& relation, const ExtendedRelation& complement) {
  if (relation.schema() == nullptr || complement.schema() == nullptr ||
      !relation.schema()->UnionCompatibleWith(*complement.schema())) {
    return Status::Incompatible(
        "complement must share the relation's schema");
  }
  ExtendedRelation out(relation.name() + " u " + complement.name(),
                       relation.schema());
  for (const ExtendedTuple& t : relation.rows()) {
    EVIDENT_RETURN_NOT_OK(out.InsertUnchecked(t));
  }
  for (const ExtendedTuple& t : complement.rows()) {
    if (relation.ContainsKey(complement.KeyOf(t))) {
      return Status::InvalidArgument(
          "complement sample shares a key with the relation");
    }
    EVIDENT_RETURN_NOT_OK(out.InsertUnchecked(t));
  }
  return out;
}

Result<ExtendedRelation> PositiveSupportPart(
    const ExtendedRelation& relation) {
  ExtendedRelation out(relation.name() + "+", relation.schema());
  for (const ExtendedTuple& t : relation.rows()) {
    if (t.membership.HasPositiveSupport()) {
      EVIDENT_RETURN_NOT_OK(out.Insert(t));
    }
  }
  return out;
}

Status CheckBoundednessEquality(const ExtendedRelation& lhs,
                                const ExtendedRelation& rhs, double eps) {
  EVIDENT_ASSIGN_OR_RETURN(ExtendedRelation lpos, PositiveSupportPart(lhs));
  EVIDENT_ASSIGN_OR_RETURN(ExtendedRelation rpos, PositiveSupportPart(rhs));
  if (!lpos.ApproxEquals(rpos, eps)) {
    return Status::OutOfRange(
        "boundedness property violated: sn>0 parts differ\n  without "
        "complement: " +
        lpos.ToString() + "  with complement: " + rpos.ToString());
  }
  return Status::OK();
}

}  // namespace evident
