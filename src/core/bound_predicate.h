#ifndef EVIDENT_CORE_BOUND_PREDICATE_H_
#define EVIDENT_CORE_BOUND_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/column_store.h"
#include "core/predicate.h"
#include "core/schema.h"
#include "core/support_pair.h"
#include "core/tuple.h"

namespace evident {

/// \brief A selection predicate compiled against a schema: attribute
/// references resolved to positions, IS-subsets translated to bit masks
/// over the attribute's frame, theta comparisons tabulated as per-element
/// satisfaction masks — once per operator call instead of once per tuple.
///
/// Evaluation is arithmetic-identical to Predicate::Evaluate (same focal
/// iteration orders, same accumulation sequences), so the interpreted and
/// bound paths produce bit-equal support pairs; the columnar operators
/// rely on this for their bit-identical-to-row-mode contract. Conjuncts
/// the binder cannot pre-resolve — unknown attribute names, constants
/// outside the frame, frames wider than the inline 64-value word, or
/// predicate types it does not know — fall back to the interpreted
/// predicate so behaviour (including per-row error reporting) never
/// changes; such predicates report fully_bound() == false and are
/// excluded from the columnar and pair fast paths.
class BoundPredicate {
 public:
  /// \brief Compiles `predicate` against `schema`. Never fails: what
  /// cannot be bound falls back to interpretation.
  static BoundPredicate Bind(PredicatePtr predicate, SchemaPtr schema);

  /// \brief Bind against a product schema whose first `left_cells`
  /// attributes come from the left operand — enables EvaluatePair for
  /// the hash-join residual without materializing the pair's tuple.
  static BoundPredicate BindPair(PredicatePtr predicate, SchemaPtr schema,
                                 size_t left_cells);

  /// \brief True when every conjunct was pre-resolved. Then evaluation
  /// cannot fail and EvaluatePair / EvaluateColumns are available;
  /// otherwise callers fall back to the interpreted predicate.
  bool fully_bound() const { return fully_bound_; }

  /// \brief Evaluate over the (left, right) pair as if over the
  /// concatenated product tuple, without building it. Requires
  /// fully_bound() and a BindPair-compiled predicate.
  SupportPair EvaluatePair(const ExtendedTuple& left,
                           const ExtendedTuple& right) const;

  /// \brief EvaluatePair straight off the operands' column stores:
  /// evaluates the pair (left row `lrow`, right row `rrow`) reading
  /// packed value/evidence columns — the join splice path, which never
  /// materializes operand row objects. Requires fully_bound() and a
  /// BindPair-compiled predicate; arithmetic-identical to EvaluatePair
  /// (same focal orders, same accumulation sequences).
  SupportPair EvaluatePairColumns(const ColumnStore& left, size_t lrow,
                                  const ColumnStore& right,
                                  size_t rrow) const;

  /// \brief True when some conjunct is provably unsatisfiable on every
  /// row of the partition, judged from its zone map alone — then every
  /// row's support is exactly (0, 0), F_TM revision zeroes sn, and
  /// CWA_ER drops the row, so a scan may skip the partition without
  /// reading (or even verifying) its bytes. Only definite-attribute
  /// theta comparisons and definite IS conjuncts consult the zones;
  /// everything else conservatively returns false. Requires
  /// fully_bound() on a single-relation (Bind, not BindPair) predicate;
  /// returns false otherwise.
  bool RefutesPartition(const ColumnStore::PartitionZone& zone) const;

  /// \brief Evaluates rows [begin, end) of the column store, writing
  /// out[row] for each — `out` is indexed *absolutely* (out[row], not
  /// out[row - begin]), so morsel-parallel callers hand every worker the
  /// same full-size output array and the disjoint ranges stay disjoint
  /// writes. Requires fully_bound(); reads packed evidence spans
  /// directly (no per-row evidence objects). Thread-safe across
  /// disjoint ranges (scratch is thread-local). The per-row
  /// multiplication sequence runs in conjunct order regardless of range
  /// width, so a single-row call (begin = row, end = row + 1 — how the
  /// fused pipeline's sparse later stages evaluate surviving rows) is
  /// arithmetic-identical to the same row inside a full-range sweep.
  void EvaluateColumns(const ColumnStore& store, size_t begin, size_t end,
                       SupportPair* out) const;

  /// \name Compiled representation (public for the evaluation helpers in
  /// bound_predicate.cc; not part of the stable API).
  /// @{

  /// One side of a bound theta comparison.
  struct Operand {
    enum class Kind : uint8_t {
      kDefiniteAttr,   // definite/key attribute: one Value per row
      kEvidenceAttr,   // uncertain attribute over an inline frame
      kLitValue,       // literal definite value
      kLitEvidence,    // literal evidence set over an inline frame
    };
    Kind kind = Kind::kLitValue;
    size_t attr = 0;                  // attribute operands
    const Domain* domain = nullptr;   // evidence operands
    const Value* lit_value = nullptr; // kLitValue (owned by the predicate)
    std::vector<uint64_t> lit_words;  // kLitEvidence, SortedFocals order
    std::vector<double> lit_masses;

    bool value_typed() const {
      return kind == Kind::kDefiniteAttr || kind == Kind::kLitValue;
    }
    /// Element count of the operand's fixed universe (1 for value-typed).
    size_t universe() const {
      return value_typed() ? 1 : domain->size();
    }
  };

  struct Conjunct {
    enum class Kind : uint8_t {
      kIsDefinite,   // IS over a definite/key attribute
      kIsEvidence,   // IS over an inline uncertain attribute
      kTheta,        // theta comparison with pre-resolved operands
    };
    Kind kind = Kind::kIsDefinite;
    size_t attr = 0;                      // kIsDefinite / kIsEvidence
    const std::vector<Value>* is_values = nullptr;  // kIsDefinite
    uint64_t set_word = 0;                // kIsEvidence: C as a bit mask
    ThetaOp op = ThetaOp::kEq;            // kTheta
    ThetaSemantics semantics = ThetaSemantics::kForallExists;
    Operand lhs, rhs;
    /// sat[s] = mask of rhs elements t with theta(lhs[s], rhs[t]);
    /// precomputed when neither side is kDefiniteAttr (whose per-row
    /// value requires recomputation at evaluation time).
    std::vector<uint64_t> sat;
    bool sat_static = false;
  };

  /// @}

 private:
  void BindInto(const PredicatePtr& predicate);
  bool BindConjunct(const PredicatePtr& predicate);

  PredicatePtr root_;
  SchemaPtr schema_;
  std::vector<Conjunct> conjuncts_;
  size_t left_cells_ = 0;  // BindPair split point (0 = single relation)
  bool fully_bound_ = false;
};

}  // namespace evident

#endif  // EVIDENT_CORE_BOUND_PREDICATE_H_
