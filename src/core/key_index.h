#ifndef EVIDENT_CORE_KEY_INDEX_H_
#define EVIDENT_CORE_KEY_INDEX_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace evident {

/// \brief FNV-1a over the canonical key bytes — the one key hash the
/// key index, the persisted EVCIMG03 index image and the hash
/// partitioner all share. It is fixed and process-independent (unlike
/// std::hash), so hashes written to disk by one build verify and probe
/// correctly in any other.
inline uint64_t StableKeyHash(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

/// \brief A flat open-addressing index from encoded key bytes to row
/// indices — the ExtendedRelation key index.
///
/// Keys are stored back-to-back in one arena string with a per-row
/// offset array, so the index performs no per-entry node allocation (the
/// former unordered_map paid one per insert) and lookups compare
/// contiguous byte slices. Rows are appended in order: row i's key is
/// the i-th successful Insert. Probing hashes a std::string_view over
/// the caller's reused encode buffer — no temporary key objects.
class EncodedKeyIndex {
 public:
  static constexpr uint32_t kNoRow = 0xFFFFFFFFu;

  size_t size() const { return hashes_.size(); }

  void Clear() {
    arena_.clear();
    starts_.assign(1, 0);
    hashes_.clear();
    slots_.clear();
    mask_ = 0;
  }

  void Reserve(size_t rows) {
    arena_.reserve(arena_.size() + rows * 12);
    starts_.reserve(starts_.size() + rows);
    hashes_.reserve(hashes_.size() + rows);
    if ((hashes_.size() + rows + 1) * 4 > slots_.size() * 3) {
      Rehash(TableFor(hashes_.size() + rows));
    }
  }

  /// \brief Indexes `key` as the next row. Returns kNoRow on success, or
  /// the already-present row holding an equal key (nothing inserted).
  uint32_t Insert(std::string_view key) {
    // Keys are addressed with 32-bit arena offsets and row ids; an
    // in-memory relation exhausts RAM long before either wraps, so the
    // limit fails loudly instead of corrupting lookups silently.
    if (arena_.size() + key.size() >
            std::numeric_limits<uint32_t>::max() ||
        hashes_.size() >= kNoRow) {
      std::abort();
    }
    if ((hashes_.size() + 1) * 4 > slots_.size() * 3) {
      Rehash(TableFor(hashes_.size() + 1));
    }
    const uint64_t h = Hash(key);
    size_t s = h & mask_;
    while (slots_[s] != kNoRow) {
      const uint32_t other = slots_[s];
      if (hashes_[other] == h && KeyAt(other) == key) return other;
      s = (s + 1) & mask_;
    }
    const uint32_t row = static_cast<uint32_t>(hashes_.size());
    slots_[s] = row;
    hashes_.push_back(h);
    arena_.append(key);
    starts_.push_back(static_cast<uint32_t>(arena_.size()));
    return kNoRow;
  }

  /// \brief The row indexed under `key`, or kNoRow.
  uint32_t Find(std::string_view key) const {
    if (slots_.empty()) return kNoRow;
    const uint64_t h = Hash(key);
    size_t s = h & mask_;
    while (slots_[s] != kNoRow) {
      const uint32_t row = slots_[s];
      if (hashes_[row] == h && KeyAt(row) == key) return row;
      s = (s + 1) & mask_;
    }
    return kNoRow;
  }

  /// \name Persisted-image adoption (the EVCIMG03 loader).
  ///
  /// Installs a fully built index wholesale: `arena`/`starts` are the
  /// key bytes in row order, `hashes` is StableKeyHash per row, and
  /// `slots` is the open-addressing table (capacity a power of two,
  /// kNoRow = empty). The caller has bounds-checked every slot entry;
  /// semantic agreement (Find(key(r)) == r) is verified lazily by the
  /// loader's deferred per-partition checks.
  /// @{
  void AdoptParts(std::string arena, std::vector<uint32_t> starts,
                  std::vector<uint64_t> hashes, std::vector<uint32_t> slots) {
    arena_ = std::move(arena);
    starts_ = std::move(starts);
    hashes_ = std::move(hashes);
    slots_ = std::move(slots);
    mask_ = slots_.empty() ? 0 : slots_.size() - 1;
  }
  const std::vector<uint64_t>& hashes() const { return hashes_; }
  const std::vector<uint32_t>& slots() const { return slots_; }
  size_t capacity() const { return slots_.size(); }
  /// @}

  /// The table capacity the incremental insert path would pick for
  /// `rows` rows (a power of two, load factor <= 3/4) — the writer uses
  /// it so a persisted image round-trips to an identical table.
  static size_t TableCapacityFor(size_t rows) { return TableFor(rows); }

 private:
  static uint64_t Hash(std::string_view key) { return StableKeyHash(key); }

  static size_t TableFor(size_t rows) {
    size_t capacity = 16;
    while (rows * 4 > capacity * 3) capacity <<= 1;
    return capacity;
  }

  std::string_view KeyAt(uint32_t row) const {
    return std::string_view(arena_).substr(starts_[row],
                                           starts_[row + 1] - starts_[row]);
  }

  void Rehash(size_t capacity) {
    slots_.assign(capacity, kNoRow);
    mask_ = capacity - 1;
    for (uint32_t row = 0; row < hashes_.size(); ++row) {
      size_t s = hashes_[row] & mask_;
      while (slots_[s] != kNoRow) s = (s + 1) & mask_;
      slots_[s] = row;
    }
  }

  std::string arena_;
  std::vector<uint32_t> starts_{0};  // per row, into arena_ (size + 1)
  std::vector<uint64_t> hashes_;     // per row
  std::vector<uint32_t> slots_;      // open addressing, kNoRow = empty
  uint64_t mask_ = 0;
};

}  // namespace evident

#endif  // EVIDENT_CORE_KEY_INDEX_H_
