#ifndef EVIDENT_CORE_JOIN_PLAN_H_
#define EVIDENT_CORE_JOIN_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/predicate.h"
#include "core/schema.h"

namespace evident {

/// \brief One hash-join key: attribute positions in the *left* and
/// *right* operand schemas (not the concatenated product schema) whose
/// definite values must be equal for a tuple pair to match.
struct EquiKey {
  size_t left_index;
  size_t right_index;
};

/// \brief The result of splitting a join predicate into a hash-key part
/// and a residual part.
///
/// Semantics: a conjunct `A = B` where A resolves to a *definite* (key or
/// definite-kind) attribute of one operand and B to a definite attribute
/// of the other contributes support (1,1) to F_SS when the two cell
/// values are equal and (0,0) otherwise — under both ThetaSemantics,
/// since definite cells decompose to singleton focals. A (0,0) factor
/// zeroes the revised membership, and extended selection always drops
/// sn = 0 tuples (CWA_ER) regardless of the threshold Q, so non-matching
/// pairs can never reach the result: equality on definite attributes
/// partitions the product exactly, which is what makes hash-partitioning
/// sound. Everything else — theta comparisons involving uncertain
/// attributes or literals, IS-conditions, non-equality operators — stays
/// in `residual`, evaluated per matched pair exactly as Select would.
struct JoinPlan {
  std::vector<EquiKey> keys;
  /// Conjunction of the non-equi conjuncts; nullptr when the equi keys
  /// cover the whole predicate (every matched pair then carries support
  /// (1,1) from the predicate).
  PredicatePtr residual;
};

/// \brief Depth-first left-to-right flattening of nested conjunctions
/// into `out`, matching AndPredicate::Evaluate's order — shared by the
/// join analyzer below and the query optimizer's pushdown pass (which
/// routes single-side conjuncts below the join). An empty conjunction is
/// kept as a leaf so consumers report the same error evaluation would.
void FlattenConjuncts(const PredicatePtr& predicate,
                      std::vector<PredicatePtr>* out);

/// \brief Splits `predicate` (written against the concatenated product
/// schema of the two operands) into hash-join equi-keys and a residual.
///
/// `product_schema` must be the schema MakeProductSchema builds for the
/// operands and `left_attr_count` the left operand's attribute count (the
/// first `left_attr_count` product attributes are the left's). Attribute
/// references that do not resolve against the product schema are an
/// error, mirroring what predicate evaluation over the materialized
/// product would report. An empty `keys` vector means the predicate has
/// no usable equi-conjunct and the caller must fall back to
/// Select-over-Product.
Result<JoinPlan> AnalyzeJoinPredicate(const PredicatePtr& predicate,
                                      const RelationSchema& product_schema,
                                      size_t left_attr_count);

/// \brief One definite equi edge of an n-way join graph: a conjunct
/// `A = B` where A resolves to a definite attribute of operand
/// `left_operand` (at operand-local position `left_index`) and B to a
/// definite attribute of the distinct operand `right_operand`. The same
/// exactness argument as for EquiKey applies edge-wise, so the n-way
/// enumeration may hash-partition on any subset of the edges.
struct MultiJoinEdge {
  size_t left_operand;
  size_t left_index;
  size_t right_operand;
  size_t right_index;
};

/// \brief Extracts the definite equi edges of `predicate` (written
/// against the flat n-way product schema whose operand attribute counts
/// are `operand_attr_counts`). Conjuncts that are not definite
/// attr-equals-attr across two distinct operands — including any whose
/// references do not resolve — are simply skipped: the full predicate is
/// always re-evaluated over the enumerated tuples, so the edge set only
/// prunes, never decides, membership.
std::vector<MultiJoinEdge> AnalyzeMultiJoinEdges(
    const PredicatePtr& predicate, const RelationSchema& product_schema,
    const std::vector<size_t>& operand_attr_counts);

}  // namespace evident

#endif  // EVIDENT_CORE_JOIN_PLAN_H_
