#ifndef EVIDENT_CORE_ATTRIBUTE_H_
#define EVIDENT_CORE_ATTRIBUTE_H_

#include <string>
#include <utility>

#include "common/domain.h"

namespace evident {

/// \brief Role an attribute plays in an extended relation.
enum class AttributeKind {
  /// Part of the (definite) key; the paper requires extended relations to
  /// have definite key values used for tuple matching.
  kKey,
  /// Non-key, but always holds a definite (certain) value.
  kDefinite,
  /// Non-key, holds an evidence set over a declared domain — the paper's
  /// "†"-prefixed virtual attributes.
  kUncertain,
};

const char* AttributeKindToString(AttributeKind kind);

/// \brief Declaration of one attribute of an extended relation schema.
///
/// Uncertain attributes must declare the finite Domain that serves as
/// their frame of discernment. Key and definite attributes may leave the
/// domain null (free-typed Values) or declare one to get value checking.
struct AttributeDef {
  std::string name;
  AttributeKind kind = AttributeKind::kDefinite;
  DomainPtr domain;

  AttributeDef() = default;
  AttributeDef(std::string name_in, AttributeKind kind_in,
               DomainPtr domain_in = nullptr)
      : name(std::move(name_in)), kind(kind_in), domain(std::move(domain_in)) {}

  /// \brief Convenience factories.
  static AttributeDef Key(std::string name) {
    return AttributeDef(std::move(name), AttributeKind::kKey);
  }
  static AttributeDef Definite(std::string name, DomainPtr domain = nullptr) {
    return AttributeDef(std::move(name), AttributeKind::kDefinite,
                        std::move(domain));
  }
  static AttributeDef Uncertain(std::string name, DomainPtr domain) {
    return AttributeDef(std::move(name), AttributeKind::kUncertain,
                        std::move(domain));
  }

  bool is_key() const { return kind == AttributeKind::kKey; }
  bool is_uncertain() const { return kind == AttributeKind::kUncertain; }

  /// \brief Same name, kind and (structurally) same domain.
  bool Equals(const AttributeDef& other) const {
    return name == other.name && kind == other.kind &&
           SameDomain(domain, other.domain);
  }
};

}  // namespace evident

#endif  // EVIDENT_CORE_ATTRIBUTE_H_
