#include "core/bound_predicate.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/math_util.h"

namespace evident {

namespace {

using FocalBuf = std::vector<std::pair<uint64_t, double>>;

/// Reused per-thread buffers: per-row focal gathers for theta operands
/// and the dynamic satisfaction table when a side is a definite
/// attribute (whose value changes per row).
struct EvalScratch {
  FocalBuf lhs_focals;
  FocalBuf rhs_focals;
  std::vector<uint64_t> sat;
};

EvalScratch& Scratch() {
  thread_local EvalScratch scratch;
  return scratch;
}

/// Sorts gathered focals into the order ThetaOperand::Decompose exposes
/// (MassFunction::SortedFocals: cardinality, then bit pattern) so the
/// bound path accumulates mass products in the identical sequence.
void SortFocalsPaperOrder(FocalBuf* focals) {
  std::sort(focals->begin(), focals->end(),
            [](const auto& a, const auto& b) {
              const int ca = std::popcount(a.first);
              const int cb = std::popcount(b.first);
              if (ca != cb) return ca < cb;
              return a.first < b.first;
            });
}

SupportPair IsDefiniteSupport(const Value& stored,
                              const std::vector<Value>& values) {
  for (const Value& c : values) {
    if (stored == c) return SupportPair::Certain();
  }
  return SupportPair::Impossible();
}

/// Bel/Pls of the subset mask `set` over a packed focal span, in span
/// (= focal store) order — the arithmetic of MassFunction::Belief and
/// ::Plausibility fused into one pass.
SupportPair IsEvidenceSupportSpan(uint64_t set, const uint64_t* words,
                                  const double* masses, size_t n) {
  double bel = 0.0;
  double pls = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = words[i];
    if (w != 0 && (w & ~set) == 0) bel += masses[i];
    if ((w & set) != 0) pls += masses[i];
  }
  return SupportPair{ClampUnit(bel), ClampUnit(pls)};
}

SupportPair IsEvidenceSupportFocals(uint64_t set,
                                    const MassFunction::FocalVector& focals) {
  double bel = 0.0;
  double pls = 0.0;
  for (const auto& [focal, mass] : focals) {
    const uint64_t w = focal.InlineWord();
    if (w != 0 && (w & ~set) == 0) bel += mass;
    if ((w & set) != 0) pls += mass;
  }
  return SupportPair{ClampUnit(bel), ClampUnit(pls)};
}

}  // namespace

BoundPredicate BoundPredicate::Bind(PredicatePtr predicate, SchemaPtr schema) {
  return BindPair(std::move(predicate), std::move(schema), 0);
}

BoundPredicate BoundPredicate::BindPair(PredicatePtr predicate,
                                        SchemaPtr schema, size_t left_cells) {
  BoundPredicate bound;
  bound.root_ = std::move(predicate);
  bound.schema_ = std::move(schema);
  bound.left_cells_ = left_cells;
  bound.fully_bound_ = bound.root_ != nullptr && bound.schema_ != nullptr;
  if (bound.root_ != nullptr) bound.BindInto(bound.root_);
  return bound;
}

void BoundPredicate::BindInto(const PredicatePtr& predicate) {
  // Flatten conjunction trees: multiplying child products in depth-first
  // order equals multiplying the flattened conjunct sequence (the
  // accumulator starts at the multiplicative identity (1,1)). The empty
  // conjunction is *not* flattened away — it must keep producing the
  // interpreted path's per-row error.
  if (const auto* conjunction =
          dynamic_cast<const AndPredicate*>(predicate.get());
      conjunction != nullptr && !conjunction->children().empty()) {
    for (const PredicatePtr& child : conjunction->children()) {
      BindInto(child);
    }
    return;
  }
  if (!BindConjunct(predicate)) {
    // Callers route unbound predicates to the interpreted path wholesale
    // (SelectRows, the join's materialize-then-evaluate branch), so no
    // fallback conjunct is stored — the flag is the whole answer.
    fully_bound_ = false;
  }
}

namespace {

/// Fills `sat` with one mask per lhs element: the rhs elements
/// satisfying theta. `lhs_value`/`rhs_value` supply the single value of
/// a value-typed side (literal at bind time, the row's cell during
/// evaluation).
template <typename LhsValueAt, typename RhsValueAt>
void BuildSatTable(size_t lhs_universe, size_t rhs_universe, ThetaOp op,
                   LhsValueAt&& lhs_value, RhsValueAt&& rhs_value,
                   std::vector<uint64_t>* sat) {
  sat->clear();
  for (size_t s = 0; s < lhs_universe; ++s) {
    const Value& a = lhs_value(s);
    uint64_t mask = 0;
    for (size_t t = 0; t < rhs_universe; ++t) {
      if (ApplyThetaOp(a, op, rhs_value(t))) mask |= uint64_t{1} << t;
    }
    sat->push_back(mask);
  }
}

/// The theta support sum over two focal lists and a satisfaction table —
/// the bound equivalent of ThetaPredicate::Evaluate's pair loop, with
/// the per-element comparisons replaced by mask tests. Accumulation
/// order matches: lhs focals outer, rhs inner, sn/sp += mass product.
SupportPair ThetaSupport(ThetaSemantics semantics, const FocalBuf& lhs,
                         const FocalBuf& rhs, const uint64_t* sat) {
  double sn = 0.0;
  double sp = 0.0;
  for (const auto& [wa, ma] : lhs) {
    for (const auto& [wb, mb] : rhs) {
      bool some = false;
      bool necessary = wa != 0 && wb != 0;
      uint64_t rem = wa;
      while (rem != 0) {
        const int s = std::countr_zero(rem);
        rem &= rem - 1;
        const uint64_t hit = sat[s] & wb;
        if (hit != 0) {
          some = true;
        }
        const bool element_ok = semantics == ThetaSemantics::kForallExists
                                    ? hit != 0
                                    : hit == wb;
        if (!element_ok) necessary = false;
      }
      const double product = ma * mb;
      if (necessary) sn += product;
      if (some) sp += product;
    }
  }
  return SupportPair{ClampUnit(sn), ClampUnit(sp)};
}

}  // namespace

bool BoundPredicate::BindConjunct(const PredicatePtr& predicate) {
  if (const auto* is = dynamic_cast<const IsPredicate*>(predicate.get())) {
    Result<size_t> index = schema_->IndexOf(is->attribute());
    if (!index.ok()) return false;
    const AttributeDef& attr = schema_->attribute(*index);
    Conjunct c;
    c.attr = *index;
    if (attr.kind != AttributeKind::kUncertain) {
      c.kind = Conjunct::Kind::kIsDefinite;
      c.is_values = &is->values();
      conjuncts_.push_back(std::move(c));
      return true;
    }
    if (attr.domain == nullptr ||
        attr.domain->size() > ValueSet::kMaxInlineUniverse) {
      return false;
    }
    uint64_t word = 0;
    for (const Value& v : is->values()) {
      Result<size_t> vi = attr.domain->IndexOf(v);
      // A constant outside the frame is a per-row error in the
      // interpreted path; fall back so the error (and its absence over
      // an empty relation) reproduces exactly.
      if (!vi.ok()) return false;
      word |= uint64_t{1} << *vi;
    }
    c.kind = Conjunct::Kind::kIsEvidence;
    c.set_word = word;
    conjuncts_.push_back(std::move(c));
    return true;
  }

  const auto* theta = dynamic_cast<const ThetaPredicate*>(predicate.get());
  if (theta == nullptr) return false;

  Conjunct c;
  c.kind = Conjunct::Kind::kTheta;
  c.op = theta->op();
  c.semantics = theta->semantics();
  auto bind_operand = [this](const ThetaOperand& operand, Operand* out) {
    if (operand.is_attribute()) {
      Result<size_t> index = schema_->IndexOf(operand.attribute());
      if (!index.ok()) return false;
      const AttributeDef& attr = schema_->attribute(*index);
      out->attr = *index;
      if (attr.kind != AttributeKind::kUncertain) {
        out->kind = Operand::Kind::kDefiniteAttr;
        return true;
      }
      if (attr.domain == nullptr ||
          attr.domain->size() > ValueSet::kMaxInlineUniverse) {
        return false;
      }
      out->kind = Operand::Kind::kEvidenceAttr;
      out->domain = attr.domain.get();
      return true;
    }
    if (operand.is_literal_value()) {
      out->kind = Operand::Kind::kLitValue;
      out->lit_value = &operand.literal_value();
      return true;
    }
    const EvidenceSet& es = operand.literal_evidence();
    if (es.domain() == nullptr ||
        es.domain()->size() > ValueSet::kMaxInlineUniverse) {
      return false;
    }
    out->kind = Operand::Kind::kLitEvidence;
    out->domain = es.domain().get();
    for (const auto& [set, mass] : es.mass().SortedFocals()) {
      out->lit_words.push_back(set.InlineWord());
      out->lit_masses.push_back(mass);
    }
    return true;
  };
  if (!bind_operand(theta->lhs(), &c.lhs)) return false;
  if (!bind_operand(theta->rhs(), &c.rhs)) return false;

  if (c.lhs.kind != Operand::Kind::kDefiniteAttr &&
      c.rhs.kind != Operand::Kind::kDefiniteAttr) {
    c.sat_static = true;
    BuildSatTable(
        c.lhs.universe(), c.rhs.universe(), c.op,
        [&](size_t s) -> const Value& {
          return c.lhs.kind == Operand::Kind::kLitValue
                     ? *c.lhs.lit_value
                     : c.lhs.domain->value(s);
        },
        [&](size_t t) -> const Value& {
          return c.rhs.kind == Operand::Kind::kLitValue
                     ? *c.rhs.lit_value
                     : c.rhs.domain->value(t);
        },
        &c.sat);
  }
  conjuncts_.push_back(std::move(c));
  return true;
}

namespace {

/// Evaluates one bound theta conjunct. `value_at(attr)` yields the row's
/// definite cell value; `gather(attr, buf)` appends the row's evidence
/// focals as (word, mass) in focal-store order.
template <typename ValueAt, typename Gather>
SupportPair EvalTheta(const BoundPredicate::Conjunct& c, ValueAt&& value_at,
                      Gather&& gather, EvalScratch& s) {
  using Operand = BoundPredicate::Operand;
  const Value* lhs_value = nullptr;
  const Value* rhs_value = nullptr;
  auto load_side = [&](const Operand& o, FocalBuf* buf, const Value** value) {
    buf->clear();
    switch (o.kind) {
      case Operand::Kind::kDefiniteAttr:
        *value = &value_at(o.attr);
        buf->emplace_back(uint64_t{1}, 1.0);
        break;
      case Operand::Kind::kLitValue:
        *value = o.lit_value;
        buf->emplace_back(uint64_t{1}, 1.0);
        break;
      case Operand::Kind::kEvidenceAttr:
        gather(o.attr, buf);
        SortFocalsPaperOrder(buf);
        break;
      case Operand::Kind::kLitEvidence:
        for (size_t k = 0; k < o.lit_words.size(); ++k) {
          buf->emplace_back(o.lit_words[k], o.lit_masses[k]);
        }
        break;
    }
  };
  load_side(c.lhs, &s.lhs_focals, &lhs_value);
  load_side(c.rhs, &s.rhs_focals, &rhs_value);

  const uint64_t* sat;
  if (c.sat_static) {
    sat = c.sat.data();
  } else {
    BuildSatTable(
        c.lhs.universe(), c.rhs.universe(), c.op,
        [&](size_t i) -> const Value& {
          return c.lhs.value_typed() ? *lhs_value : c.lhs.domain->value(i);
        },
        [&](size_t t) -> const Value& {
          return c.rhs.value_typed() ? *rhs_value : c.rhs.domain->value(t);
        },
        &s.sat);
    sat = s.sat.data();
  }
  return ThetaSupport(c.semantics, s.lhs_focals, s.rhs_focals, sat);
}

void GatherCellFocals(const Cell& cell, FocalBuf* buf) {
  for (const auto& [set, mass] : std::get<EvidenceSet>(cell).mass().focals()) {
    buf->emplace_back(set.InlineWord(), mass);
  }
}

}  // namespace

SupportPair BoundPredicate::EvaluatePair(const ExtendedTuple& left,
                                         const ExtendedTuple& right) const {
  EvalScratch& s = Scratch();
  auto cell_at = [&](size_t a) -> const Cell& {
    return a < left_cells_ ? left.cells[a] : right.cells[a - left_cells_];
  };
  SupportPair acc = SupportPair::Certain();
  for (const Conjunct& c : conjuncts_) {
    SupportPair support;
    switch (c.kind) {
      case Conjunct::Kind::kIsDefinite:
        support =
            IsDefiniteSupport(std::get<Value>(cell_at(c.attr)), *c.is_values);
        break;
      case Conjunct::Kind::kIsEvidence:
        support = IsEvidenceSupportFocals(
            c.set_word,
            std::get<EvidenceSet>(cell_at(c.attr)).mass().focals());
        break;
      case Conjunct::Kind::kTheta:
        support = EvalTheta(
            c,
            [&](size_t a) -> const Value& {
              return std::get<Value>(cell_at(a));
            },
            [&](size_t a, FocalBuf* buf) { GatherCellFocals(cell_at(a), buf); },
            s);
        break;
    }
    acc = acc.Multiply(support);
  }
  return acc;
}

SupportPair BoundPredicate::EvaluatePairColumns(const ColumnStore& left,
                                                size_t lrow,
                                                const ColumnStore& right,
                                                size_t rrow) const {
  EvalScratch& s = Scratch();
  // Bound conjuncts only reference kValue columns (definite attributes)
  // and kEvidence columns (inline-frame uncertain attributes) — wider
  // frames never bind — so the two stores cover every resolvable
  // operand. Product-schema attribute `a` maps to left attribute `a` or
  // right attribute `a - left_cells_`.
  auto value_at = [&](size_t a) -> const Value& {
    return a < left_cells_
               ? left.value_column(a).values[lrow]
               : right.value_column(a - left_cells_).values[rrow];
  };
  auto span_of = [&](size_t a, const ColumnStore::EvidenceColumn** col,
                     uint32_t* first, uint32_t* count) {
    const bool from_left = a < left_cells_;
    const ColumnStore& store = from_left ? left : right;
    const size_t row = from_left ? lrow : rrow;
    *col = &store.evidence_column(from_left ? a : a - left_cells_);
    *first = (*col)->offsets[row];
    *count = (*col)->offsets[row + 1] - *first;
  };
  auto gather = [&](size_t a, FocalBuf* buf) {
    const ColumnStore::EvidenceColumn* col;
    uint32_t first, count;
    span_of(a, &col, &first, &count);
    for (uint32_t k = 0; k < count; ++k) {
      buf->emplace_back(col->words[first + k], col->masses[first + k]);
    }
  };
  SupportPair acc = SupportPair::Certain();
  for (const Conjunct& c : conjuncts_) {
    SupportPair support;
    switch (c.kind) {
      case Conjunct::Kind::kIsDefinite:
        support = IsDefiniteSupport(value_at(c.attr), *c.is_values);
        break;
      case Conjunct::Kind::kIsEvidence: {
        const ColumnStore::EvidenceColumn* col;
        uint32_t first, count;
        span_of(c.attr, &col, &first, &count);
        support = IsEvidenceSupportSpan(c.set_word, col->words.data() + first,
                                        col->masses.data() + first, count);
        break;
      }
      case Conjunct::Kind::kTheta:
        support = EvalTheta(c, value_at, gather, s);
        break;
    }
    acc = acc.Multiply(support);
  }
  return acc;
}

void BoundPredicate::EvaluateColumns(const ColumnStore& store, size_t begin,
                                     size_t end, SupportPair* out) const {
  EvalScratch& s = Scratch();
  for (size_t r = begin; r < end; ++r) out[r] = SupportPair::Certain();
  // Column-at-a-time: each conjunct sweeps its rows contiguously; the
  // per-row multiplication sequence still runs in conjunct order, so the
  // result equals the row-at-a-time product bit for bit.
  for (const Conjunct& c : conjuncts_) {
    switch (c.kind) {
      case Conjunct::Kind::kIsDefinite: {
        const std::vector<Value>& values =
            store.value_column(c.attr).values;
        for (size_t r = begin; r < end; ++r) {
          out[r] = out[r].Multiply(IsDefiniteSupport(values[r], *c.is_values));
        }
        break;
      }
      case Conjunct::Kind::kIsEvidence: {
        const ColumnStore::EvidenceColumn& col = store.evidence_column(c.attr);
        for (size_t r = begin; r < end; ++r) {
          const uint32_t first = col.offsets[r];
          out[r] = out[r].Multiply(IsEvidenceSupportSpan(
              c.set_word, col.words.data() + first, col.masses.data() + first,
              col.offsets[r + 1] - first));
        }
        break;
      }
      case Conjunct::Kind::kTheta: {
        for (size_t r = begin; r < end; ++r) {
          out[r] = out[r].Multiply(EvalTheta(
              c,
              [&](size_t a) -> const Value& {
                return store.value_column(a).values[r];
              },
              [&](size_t a, FocalBuf* buf) {
                const ColumnStore::EvidenceColumn& col =
                    store.evidence_column(a);
                const uint32_t first = col.offsets[r];
                const uint32_t count = col.offsets[r + 1] - first;
                for (uint32_t k = 0; k < count; ++k) {
                  buf->emplace_back(col.words[first + k],
                                    col.masses[first + k]);
                }
              },
              s));
        }
        break;
      }
    }
  }
}

namespace {

/// True when no value in [min, max] can satisfy `attr_value op lit` —
/// the attribute's zone bounds stand in for every row at once. Uses the
/// same Value ordering the theta kernels evaluate with, so a refuted
/// partition is one where every row's support would compute to (0, 0).
bool ZoneRefutesTheta(ThetaOp op, const Value& min, const Value& max,
                      const Value& lit, bool attr_is_lhs) {
  if (attr_is_lhs) {
    switch (op) {
      case ThetaOp::kEq:
        return lit < min || max < lit;
      case ThetaOp::kLt:  // attr < lit needs min < lit
        return !(min < lit);
      case ThetaOp::kLe:
        return !(min <= lit);
      case ThetaOp::kGt:  // attr > lit needs lit < max
        return !(lit < max);
      case ThetaOp::kGe:
        return !(lit <= max);
    }
  } else {
    switch (op) {
      case ThetaOp::kEq:
        return lit < min || max < lit;
      case ThetaOp::kLt:  // lit < attr needs lit < max
        return !(lit < max);
      case ThetaOp::kLe:
        return !(lit <= max);
      case ThetaOp::kGt:  // lit > attr needs min < lit
        return !(min < lit);
      case ThetaOp::kGe:
        return !(min <= lit);
    }
  }
  return false;
}

/// Attr-vs-attr refutation: the two zones as interval bounds.
bool ZonesRefuteTheta(ThetaOp op, const ColumnStore::ValueZone& a,
                      const ColumnStore::ValueZone& b) {
  switch (op) {
    case ThetaOp::kEq:  // disjoint ranges
      return a.max < b.min || b.max < a.min;
    case ThetaOp::kLt:  // a < b needs a.min < b.max
      return !(a.min < b.max);
    case ThetaOp::kLe:
      return !(a.min <= b.max);
    case ThetaOp::kGt:  // a > b needs b.min < a.max
      return !(b.min < a.max);
    case ThetaOp::kGe:
      return !(b.min <= a.max);
  }
  return false;
}

}  // namespace

bool BoundPredicate::RefutesPartition(
    const ColumnStore::PartitionZone& zone) const {
  if (!fully_bound_ || left_cells_ != 0) return false;
  auto value_zone = [&](size_t attr) -> const ColumnStore::ValueZone* {
    if (attr >= zone.values.size() || !zone.values[attr].has) return nullptr;
    return &zone.values[attr];
  };
  for (const Conjunct& c : conjuncts_) {
    switch (c.kind) {
      case Conjunct::Kind::kIsDefinite: {
        const ColumnStore::ValueZone* vz = value_zone(c.attr);
        if (vz == nullptr) break;
        bool any_inside = false;
        for (const Value& v : *c.is_values) {
          if (!(v < vz->min) && !(vz->max < v)) {
            any_inside = true;
            break;
          }
        }
        if (!any_inside) return true;
        break;
      }
      case Conjunct::Kind::kIsEvidence:
        break;  // evidence supports are not bounded by value zones
      case Conjunct::Kind::kTheta: {
        const bool lhs_attr = c.lhs.kind == Operand::Kind::kDefiniteAttr;
        const bool rhs_attr = c.rhs.kind == Operand::Kind::kDefiniteAttr;
        if (lhs_attr && c.rhs.kind == Operand::Kind::kLitValue) {
          const ColumnStore::ValueZone* vz = value_zone(c.lhs.attr);
          if (vz != nullptr && ZoneRefutesTheta(c.op, vz->min, vz->max,
                                                *c.rhs.lit_value,
                                                /*attr_is_lhs=*/true)) {
            return true;
          }
        } else if (rhs_attr && c.lhs.kind == Operand::Kind::kLitValue) {
          const ColumnStore::ValueZone* vz = value_zone(c.rhs.attr);
          if (vz != nullptr && ZoneRefutesTheta(c.op, vz->min, vz->max,
                                                *c.lhs.lit_value,
                                                /*attr_is_lhs=*/false)) {
            return true;
          }
        } else if (lhs_attr && rhs_attr) {
          const ColumnStore::ValueZone* la = value_zone(c.lhs.attr);
          const ColumnStore::ValueZone* rb = value_zone(c.rhs.attr);
          if (la != nullptr && rb != nullptr &&
              ZonesRefuteTheta(c.op, *la, *rb)) {
            return true;
          }
        }
        break;
      }
    }
  }
  return false;
}

}  // namespace evident
