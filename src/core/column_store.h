#ifndef EVIDENT_CORE_COLUMN_STORE_H_
#define EVIDENT_CORE_COLUMN_STORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/column_span.h"
#include "core/extended_relation.h"
#include "core/schema.h"
#include "core/support_pair.h"
#include "ds/combination.h"
#include "ds/evidence_set.h"

namespace evident {

/// \brief Optimizer statistics over one relation's column image: the row
/// count, a per-attribute distinct count (0 = unknown; `exact` is false
/// for sampled estimates), and 16-bin histograms of the membership sn/sp
/// supports (bin b counts rows with support in [b/16, (b+1)/16), the top
/// bin additionally holding support == 1). Cardinality estimation reads
/// them; nothing in the algebra does, so they never affect results.
struct TableStatistics {
  static constexpr size_t kHistogramBins = 16;

  struct Attribute {
    uint64_t distinct = 0;  // 0 = unknown (uncertain attributes)
    bool exact = false;     // true when counted, false when sampled
  };

  uint64_t row_count = 0;
  std::vector<Attribute> attributes;  // one per schema attribute
  std::vector<uint64_t> sn_histogram;  // kHistogramBins entries
  std::vector<uint64_t> sp_histogram;  // kHistogramBins entries

  /// The histogram bin a support value falls into.
  static size_t BinOf(double support) {
    const size_t bin = static_cast<size_t>(support * kHistogramBins);
    return bin >= kHistogramBins ? kHistogramBins - 1 : bin;
  }
};

/// \brief The column-major storage mode of an extended relation: one
/// column per schema attribute plus the membership support pairs as
/// parallel sn/sp arrays.
///
/// Key and definite attributes become plain Value columns. Uncertain
/// attributes over inline (≤ 64 value) domains — every paper domain —
/// pack every row's mass function into contiguous (word, mass) spans
/// with a per-row offset array, the layout the batch combination kernel
/// (CombineColumnBatch) and the columnar predicate paths consume
/// directly: a whole attribute's evidence is one flat scan instead of a
/// pointer chase through row objects. Uncertain attributes over wider
/// domains stay boxed as EvidenceSet objects (rare; the row kernels
/// handle them).
///
/// The conversion is lossless: FromRelation walks the rows once,
/// ToRelation rebuilds a relation whose tuples equal the originals.
class ColumnStore {
 public:
  /// One packed uncertain attribute. Row r's focal elements occupy
  /// words[offsets[r] .. offsets[r+1]) with parallel masses, in the mass
  /// function's focal-store order (ascending word).
  /// The three arrays are ColumnSpans so a loaded column image can
  /// borrow them straight out of an mmap'ed file; every mutating path
  /// (the splice primitives below) transparently detaches into owned
  /// storage first.
  struct EvidenceColumn {
    DomainPtr domain;               // the schema attribute's domain
    size_t universe = 0;            // == domain->size(), <= 64
    ColumnSpan<uint64_t> words;
    ColumnSpan<double> masses;
    ColumnSpan<uint32_t> offsets;   // rows + 1 entries

    FocalSpanColumn Spans() const {
      return FocalSpanColumn{words.data(), masses.data(), offsets.data()};
    }
    size_t FocalCount(size_t row) const {
      return offsets[row + 1] - offsets[row];
    }

    /// \brief Appends row `row` of `src` to this column: one packed
    /// span copy with the offset rebased onto this arena. The splice
    /// primitive of the columnar operators (Select's keep list, Union's
    /// unmatched sides, Join/Product's pair lists).
    void AppendRowFrom(const EvidenceColumn& src, size_t row) {
      const uint32_t first = src.offsets[row];
      const uint32_t last = src.offsets[row + 1];
      words.insert(words.end(), src.words.begin() + first,
                   src.words.begin() + last);
      masses.insert(masses.end(), src.masses.begin() + first,
                    src.masses.begin() + last);
      offsets.push_back(static_cast<uint32_t>(words.size()));
    }
  };

  /// A definite (or key) attribute as a contiguous value array.
  struct ValueColumn {
    std::vector<Value> values;
  };

  /// An uncertain attribute whose domain exceeds the inline word — kept
  /// as row-wise evidence objects (the pairwise multi-word kernel path).
  struct BoxedColumn {
    std::vector<EvidenceSet> sets;
  };

  enum class ColumnKind { kValue, kEvidence, kBoxed };

  ColumnStore() = default;

  /// \brief Packs `rel` column-major. O(total cells + total focal
  /// elements); performs no validation (the relation's invariants hold
  /// by construction).
  static ColumnStore FromRelation(const ExtendedRelation& rel);

  /// \brief An empty store with `schema`'s column layout (kinds and
  /// slots prepared, zero rows) — the starting point for operators that
  /// build their output column-at-a-time; fill through the *_mut
  /// accessors and AppendMembership, keeping all columns the same
  /// length.
  static ColumnStore EmptyLike(SchemaPtr schema, std::string name);

  /// \brief A copy of `src` under a different schema of identical column
  /// layout (same attribute count, kinds and domains — only names and
  /// kind-preserving metadata may differ). The schema-only operators
  /// (RenameAttribute) use this to re-label a column image without
  /// materializing a single row.
  static ColumnStore WithSchema(const ColumnStore& src, SchemaPtr schema,
                                std::string name);

  /// \brief Splices a projected row subset of `src` into a fresh store:
  /// output attribute `a` (of `schema`, whose kinds and domains must
  /// match) takes the cells of `src` attribute `attr_indices[a]` at the
  /// rows listed in `keep` (ascending); `memberships` is parallel to
  /// `keep` and becomes the membership column. Value columns are copied
  /// element-wise, packed focal spans are repacked with rebased offsets,
  /// boxed sets are shared. The row-subset primitive of the columnar
  /// operators (Select's keep list, the pushdown prefilter, Intersect's
  /// merged rows — identity `attr_indices`) and of the fused pipeline
  /// executor, which filters and projects in the same single splice.
  static ColumnStore SpliceRows(const ColumnStore& src, SchemaPtr schema,
                                std::string name,
                                const std::vector<size_t>& attr_indices,
                                const std::vector<uint32_t>& keep,
                                const std::vector<SupportPair>& memberships);

  /// \brief Rebuilds the row representation. The result's tuples are
  /// bit-identical to the relation the store was packed from.
  Result<ExtendedRelation> ToRelation() const;

  /// \brief Materializes one row as a tuple (cells in schema order plus
  /// membership), bit-identical to the row the store was packed from.
  ExtendedTuple MaterializeRow(size_t row) const;

  /// \brief Writes the canonical encoding of row `row`'s key cells to
  /// `out` (cleared first) — same bytes as
  /// ExtendedRelation::EncodeKeyOf of the materialized row, straight off
  /// the contiguous key value columns.
  void EncodeKeyOfRow(size_t row, std::string* out) const;

  /// \brief Every row's encoded key packed into one arena string with a
  /// per-row offset array.
  struct EncodedKeys {
    std::string arena;
    std::vector<uint32_t> offsets;  // rows + 1 entries
    std::string_view key(size_t row) const {
      return std::string_view(arena).substr(offsets[row],
                                            offsets[row + 1] - offsets[row]);
    }
  };

  /// \brief The encoded-key arena of this store, built lazily on first
  /// use and cached alongside the column image. Catalog relations share
  /// their column image across queries, so repeated probe passes (the
  /// union/merge operators, the lazily-built key index) encode each scan
  /// key once per relation instead of once per query. Like the other
  /// lazy state, the first call is not thread-safe — operators call it
  /// on the calling thread before sharding work.
  const EncodedKeys& encoded_keys() const;

  /// \brief The statistics of this store, built lazily on first use and
  /// cached alongside the column image (catalog relations share the
  /// image across queries, so each relation is profiled once, not once
  /// per plan). A sole key attribute's distinct count is its row count
  /// by the uniqueness invariant; other definite columns are counted
  /// exactly up to kStatisticsExactRows rows and estimated from a
  /// deterministic stride sample beyond that; uncertain columns report
  /// distinct = 0 (unknown). Like encoded_keys(), the first call is not
  /// thread-safe.
  const TableStatistics& statistics() const;

  /// \brief Installs precomputed statistics (the column-image loader's
  /// path, restoring the persisted footer so a loaded catalog plans
  /// without re-profiling). Marks the cache built.
  void AdoptStatistics(TableStatistics stats) {
    statistics_ = std::move(stats);
    statistics_built_ = true;
  }

  /// Rows at or below which non-key distinct counts are exact.
  static constexpr size_t kStatisticsExactRows = 2048;

  const SchemaPtr& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  size_t rows() const { return sn_.size(); }

  ColumnKind kind(size_t attr) const { return kinds_[attr]; }
  const ValueColumn& value_column(size_t attr) const {
    return value_columns_[slots_[attr]];
  }
  const EvidenceColumn& evidence_column(size_t attr) const {
    return evidence_columns_[slots_[attr]];
  }
  const BoxedColumn& boxed_column(size_t attr) const {
    return boxed_columns_[slots_[attr]];
  }

  /// \brief Membership supports as parallel arrays.
  const ColumnSpan<double>& sn() const { return sn_; }
  const ColumnSpan<double>& sp() const { return sp_; }
  SupportPair membership(size_t row) const { return {sn_[row], sp_[row]}; }

  /// \brief Materializes row `row`'s evidence for attribute `attr` as an
  /// EvidenceSet, for the row-store boundary. Handles both layouts: packed
  /// kEvidence columns are decoded, boxed (wide-frame) columns returned
  /// as stored.
  EvidenceSet MaterializeEvidence(size_t attr, size_t row) const;

  /// \name Output building (EmptyLike stores).
  /// @{
  ValueColumn& value_column_mut(size_t attr) {
    return value_columns_[slots_[attr]];
  }
  EvidenceColumn& evidence_column_mut(size_t attr) {
    return evidence_columns_[slots_[attr]];
  }
  BoxedColumn& boxed_column_mut(size_t attr) {
    return boxed_columns_[slots_[attr]];
  }
  void AppendMembership(SupportPair membership) {
    sn_.push_back(membership.sn);
    sp_.push_back(membership.sp);
  }
  void ReserveRows(size_t n) {
    sn_.reserve(n);
    sp_.reserve(n);
  }
  /// @}

  /// \name Partition zone maps.
  ///
  /// A partitioned relation (an EVCIMG03 image saved with a
  /// PartitionSpec) is stored as one global column image whose rows are
  /// ordered partition-major; each partition is a contiguous row range
  /// carrying a zone map — min/max of the membership supports and of
  /// every definite value column over its rows. Scans prune a partition
  /// when a bound conjunct is refuted by its zones (see
  /// BoundPredicate::RefutesPartition); an empty vector means the
  /// relation is monolithic.
  /// @{
  struct ValueZone {
    bool has = false;  // false: no zone (uncertain attr or empty range)
    Value min;
    Value max;
  };
  struct PartitionZone {
    size_t begin_row = 0;
    size_t end_row = 0;  // half-open [begin_row, end_row)
    double sn_min = 1.0, sn_max = 0.0;
    double sp_min = 1.0, sp_max = 0.0;
    std::vector<ValueZone> values;  // one per schema attribute
  };
  const std::vector<PartitionZone>& partitions() const { return partitions_; }
  void AdoptPartitions(std::vector<PartitionZone> partitions) {
    partitions_ = std::move(partitions);
  }
  /// @}

  /// \name Loader adoption paths (column-image reader only).
  /// @{
  /// Installs a precomputed encoded-key arena (the persisted key trailer
  /// of an EVCIMG03 image) and marks the lazy cache built.
  void AdoptEncodedKeys(std::string arena, std::vector<uint32_t> offsets) {
    encoded_keys_.arena = std::move(arena);
    encoded_keys_.offsets = std::move(offsets);
    encoded_keys_built_ = true;
  }
  /// Installs the membership arrays wholesale (possibly borrowed from a
  /// mapped image); both must have the same length as every column.
  void AdoptMemberships(ColumnSpan<double> sn, ColumnSpan<double> sp) {
    sn_ = std::move(sn);
    sp_ = std::move(sp);
  }
  /// @}

  /// \name Deferred per-partition verification.
  ///
  /// A mapped image is validated structurally at open (every offset,
  /// count and slot is bounds-checked — no access through this store can
  /// read out of bounds), but the O(bytes) semantic checks (chunk CRCs,
  /// mass-function invariants, CWA_ER, key-arena/index agreement) are
  /// deferred per partition so open cost stays O(partitions). The
  /// executors call EnsurePartitionVerified / EnsureAllVerified before
  /// reading rows; the first failure is sticky and is returned by every
  /// later call, so the first error a query surfaces equals the error an
  /// eager (owned) load of the same file would have reported. Partitions
  /// a scan prunes may never be verified — a pruned partition's bytes
  /// are trusted the way any unread page of a mapped database file is.
  /// @{
  using PartitionVerifier = std::function<Status(const ColumnStore&, size_t)>;
  void InstallDeferredVerification(size_t partition_count,
                                   PartitionVerifier verifier) {
    auto d = std::make_shared<DeferredVerify>();
    d->verifier = std::move(verifier);
    d->done.assign(partition_count, 0);
    deferred_ = std::move(d);
  }
  Status EnsurePartitionVerified(size_t partition) const;
  Status EnsureAllVerified() const;
  bool deferred_verification_pending() const { return deferred_ != nullptr; }
  /// Drops the deferred state. The owned (copied) loader calls this
  /// after driving every partition check eagerly — its verifier
  /// references the load-time byte buffer, so it must never be callable
  /// once the load returns.
  void ClearDeferredVerification() { deferred_.reset(); }
  /// @}

 private:
  struct DeferredVerify {
    PartitionVerifier verifier;
    std::mutex mu;
    std::vector<uint8_t> done;
    bool failed = false;
    Status failure;
  };

  SchemaPtr schema_;
  std::string name_;
  std::vector<ColumnKind> kinds_;   // per schema attribute
  std::vector<uint32_t> slots_;     // attr -> index into its kind's vector
  std::vector<ValueColumn> value_columns_;
  std::vector<EvidenceColumn> evidence_columns_;
  std::vector<BoxedColumn> boxed_columns_;
  ColumnSpan<double> sn_, sp_;
  // Partition row ranges + zone maps (empty = monolithic).
  std::vector<PartitionZone> partitions_;
  // Deferred verification state, shared by copies of this store (the
  // data a copy carries is bit-identical, so a verification performed
  // through any copy stands for all of them). Null = fully verified.
  std::shared_ptr<DeferredVerify> deferred_;
  // Lazily-built encoded-key cache (see encoded_keys()).
  mutable EncodedKeys encoded_keys_;
  mutable bool encoded_keys_built_ = false;
  // Lazily-built statistics cache (see statistics()).
  mutable TableStatistics statistics_;
  mutable bool statistics_built_ = false;
};

/// \brief The scan-side pruning primitive shared by the columnar
/// operators and the fused-pipeline executor: returns a per-row bitmap
/// marking every row of a partition `refutes` rejects — empty when no
/// partition was pruned, so the common monolithic case costs one branch.
/// Each surviving partition's deferred (mapped-image) checks run on the
/// way; a pruned partition's bytes are never read, so they are never
/// verified either. Records the considered/pruned counts in the calling
/// thread's PartitionScanStats. A store without partitions is fully
/// verified and nothing is pruned.
Result<std::vector<uint8_t>> PruneAndVerifyPartitions(
    const ColumnStore& store,
    const std::function<bool(const ColumnStore::PartitionZone&)>& refutes);

/// \brief The surviving rows of a pruned scan as maximal contiguous
/// absolute runs, derived from the partition boundaries in
/// O(partitions): adjacent unpruned partitions coalesce into one run,
/// and an empty bitmap (nothing pruned) yields the single run
/// [0, rows). Scan executors iterate these runs — and size their morsel
/// domains to the summed run length — so a query over a mostly-pruned
/// relation costs O(surviving rows), not O(rows), per pass.
std::vector<std::pair<size_t, size_t>> UnprunedRowRuns(
    const ColumnStore& store, const std::vector<uint8_t>& row_pruned);

/// \brief Maps one morsel of the compacted scan domain back to absolute
/// row slices: `fn(begin, end)` is invoked for each maximal absolute
/// slice whose compacted positions fall in [compact_begin, compact_end).
/// Compacted position = rows of earlier runs + offset within the run,
/// so distinct morsels see disjoint slices and every unpruned row is
/// covered exactly once.
template <typename Fn>
void ForEachRunSlice(const std::vector<std::pair<size_t, size_t>>& runs,
                     size_t compact_begin, size_t compact_end, Fn&& fn) {
  size_t base = 0;  // compacted position of the current run's first row
  for (const auto& [run_begin, run_end] : runs) {
    const size_t len = run_end - run_begin;
    if (base >= compact_end) break;
    if (base + len > compact_begin) {
      const size_t lo =
          run_begin + (compact_begin > base ? compact_begin - base : 0);
      const size_t hi = run_begin + std::min(len, compact_end - base);
      if (lo < hi) fn(lo, hi);
    }
    base += len;
  }
}

}  // namespace evident

#endif  // EVIDENT_CORE_COLUMN_STORE_H_
