#ifndef EVIDENT_CORE_TUPLE_H_
#define EVIDENT_CORE_TUPLE_H_

#include <string>
#include <variant>
#include <vector>

#include "common/value.h"
#include "core/support_pair.h"
#include "ds/evidence_set.h"

namespace evident {

/// \brief One attribute slot of an extended tuple: a definite Value (key
/// and definite attributes) or an EvidenceSet (uncertain attributes).
using Cell = std::variant<Value, EvidenceSet>;

/// \brief True when the cell holds a definite Value.
inline bool CellIsValue(const Cell& cell) { return cell.index() == 0; }

/// \brief Renders either alternative.
std::string CellToString(const Cell& cell, int mass_decimals = 6);

/// \brief Structural equality; evidence cells compare by ApproxEquals
/// with `eps`.
bool CellApproxEquals(const Cell& a, const Cell& b, double eps = 1e-9);

/// \brief A tuple of an extended relation: one cell per schema attribute
/// plus the tuple membership evidence pair (sn, sp).
struct ExtendedTuple {
  std::vector<Cell> cells;
  SupportPair membership = SupportPair::Certain();

  ExtendedTuple() = default;
  ExtendedTuple(std::vector<Cell> cells_in, SupportPair membership_in)
      : cells(std::move(cells_in)), membership(membership_in) {}

  const Cell& cell(size_t i) const { return cells[i]; }

  std::string ToString(int mass_decimals = 6) const;
};

/// \brief The definite key of a tuple, extracted in key-index order.
using KeyVector = std::vector<Value>;

struct KeyVectorHash {
  size_t operator()(const KeyVector& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace evident

#endif  // EVIDENT_CORE_TUPLE_H_
