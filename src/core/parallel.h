#ifndef EVIDENT_CORE_PARALLEL_H_
#define EVIDENT_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace evident {

/// \brief A minimal tuple-range executor for the relational operators.
///
/// The per-tuple work of the extended algebra (Dempster combinations in
/// Union/MergeTuples, predicate evaluation in the join probe loop) is
/// embarrassingly parallel: tuples are independent and the combination
/// kernels keep their scratch buffers thread-local. This executor shards
/// an index range [0, n) into contiguous chunks and runs them on
/// std::threads — no dependencies, no work stealing, no task queue.
///
/// Determinism contract: shard boundaries depend only on (n, grain,
/// configured thread cap), and callers assemble results indexed by input
/// position (per-row slots or per-shard buffers concatenated in shard
/// order), so the output is bit-identical to serial execution for any
/// thread count.

/// \brief Caps the number of worker threads the executor may use.
/// 0 restores the hardware default (std::thread::hardware_concurrency).
/// Primarily for the threaded-vs-serial determinism tests and for
/// embedders that co-schedule the engine with other work.
void SetParallelMaxThreads(size_t n);

/// \brief The currently configured thread cap (>= 1).
size_t ParallelMaxThreads();

/// \brief Number of shards ParallelForShards will use for `n` items with
/// the given minimum shard size. Callers that pre-size per-shard buffers
/// rely on this being pure in (n, grain, ParallelMaxThreads()).
size_t ParallelShardCount(size_t n, size_t grain);

/// \brief Runs `fn(shard, begin, end)` over a partition of [0, n) into
/// ParallelShardCount(n, grain) contiguous ranges. With one shard the
/// call runs inline on the caller's thread (no thread is spawned); with
/// k shards, k-1 threads are spawned and shard 0 runs inline. Blocks
/// until every shard has finished. `fn` must not throw; failures are
/// communicated through caller-owned per-shard/per-row state.
void ParallelForShards(size_t n, size_t grain,
                       const std::function<void(size_t shard, size_t begin,
                                                size_t end)>& fn);

/// \brief Like ParallelForShards but over exactly `shard_count` shards
/// (a value the caller obtained from ParallelShardCount). Callers that
/// pre-size per-shard buffers must use this form: the thread cap is a
/// mutable atomic, so recomputing the count inside the executor could
/// disagree with the caller's buffers if SetParallelMaxThreads races
/// with an operator. `shard_count` must be in [1, n] when n > 0.
void ParallelForExactShards(size_t n, size_t shard_count,
                            const std::function<void(size_t shard,
                                                     size_t begin,
                                                     size_t end)>& fn);

/// \brief Number of fixed-boundary morsels ParallelForMorsels carves
/// [0, n) into: ceil(n / grain), 0 when n == 0. Unlike ParallelShardCount
/// this is pure in (n, grain) alone — morsel boundaries never depend on
/// the thread cap, which is what makes morsel-indexed output assembly
/// bit-identical for any thread count. Callers pre-size per-morsel
/// buffers with this.
size_t ParallelMorselCount(size_t n, size_t grain);

/// \brief Runs `fn(morsel, begin, end)` over the fixed-boundary morsels
/// [m*grain, min(n, (m+1)*grain)) of [0, n). Morsels are claimed from a
/// shared atomic cursor by a persistent worker pool plus the calling
/// thread, so a fast worker simply takes more morsels and a skewed
/// morsel straggles the operator by at most one grain — unlike static
/// contiguous sharding, where the unlucky shard's owner finishes last
/// while its siblings idle. Every morsel index is claimed exactly once;
/// the claim *order* is nondeterministic, so `fn` must only write state
/// indexed by morsel or by row (which is how callers keep results
/// bit-identical to serial execution).
///
/// Tiny inputs (a single morsel) and nested calls from inside a pool
/// worker run inline on the calling thread — no queue, no wakeup.
/// Blocks until every morsel has finished. `fn` must not throw.
void ParallelForMorsels(size_t n, size_t grain,
                        const std::function<void(size_t morsel, size_t begin,
                                                 size_t end)>& fn);

}  // namespace evident

#endif  // EVIDENT_CORE_PARALLEL_H_
