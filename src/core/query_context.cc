#include "core/query_context.h"

#include <string>

namespace evident {

namespace {

// The governed query running on this thread. thread_local, not a
// process global: concurrent sessions each install their own context on
// their own thread. The morsel pool's workers are different threads
// from the installer — they do NOT see this slot by magic; the pool
// carries the submitting thread's context in its job struct and installs
// it in each worker's slot for the duration of the job (see
// MorselPool::Drain in core/parallel.cc).
thread_local QueryContext* t_query_context = nullptr;

}  // namespace

QueryContext* CurrentQueryContext() { return t_query_context; }

ScopedQueryContext::ScopedQueryContext(QueryContext* ctx)
    : prev_(t_query_context) {
  t_query_context = ctx;
}

ScopedQueryContext::~ScopedQueryContext() { t_query_context = prev_; }

void QueryContext::BeginQuery() {
  cancel_.store(false, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  morsels_.store(0, std::memory_order_relaxed);
  rows_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    first_error_ = Status::OK();
  }
  if (has_deadline_) {
    deadline_tp_ = std::chrono::steady_clock::now() + deadline_duration_;
  }
}

void QueryContext::Fail(Status error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!failed_.load(std::memory_order_relaxed)) {
    first_error_ = std::move(error);
    failed_.store(true, std::memory_order_release);
  }
}

Status QueryContext::first_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

Status QueryContext::CheckCancelAndDeadline() {
  if (failed_.load(std::memory_order_acquire)) return first_error();
  if (cancel_.load(std::memory_order_acquire)) {
    Fail(Status::ExecError("query canceled: cancellation requested"));
    return first_error();
  }
  if (has_deadline_ &&
      std::chrono::steady_clock::now() >= deadline_tp_) {
    Fail(Status::ExecError(
        "query canceled: deadline exceeded after " +
        std::to_string(morsels_.load(std::memory_order_relaxed)) +
        " morsels"));
    return first_error();
  }
  return Status::OK();
}

Status QueryContext::PollMorsel() {
  morsels_.fetch_add(1, std::memory_order_relaxed);
  return CheckCancelAndDeadline();
}

Status QueryContext::PollTick() { return CheckCancelAndDeadline(); }

uint64_t QueryContext::FootprintPerRow(const RelationSchema& schema) {
  // A logical cost model, not a physical byte count: stable across the
  // row and columnar storage layouts so governed charges (and therefore
  // budget errors) are identical in every execution mode. Membership
  // pair + 16 bytes per definite/key value + a packed-span estimate per
  // uncertain attribute scaled by its frame size.
  uint64_t bytes = 16;  // (sn, sp)
  for (const AttributeDef& attr : schema.attributes()) {
    if (attr.is_uncertain()) {
      const uint64_t universe =
          attr.domain != nullptr ? attr.domain->size() : 64;
      bytes += 32 + 4 * universe;
    } else {
      bytes += 16;
    }
  }
  return bytes;
}

Status QueryContext::ChargeRows(uint64_t rows) {
  if (failed_.load(std::memory_order_acquire)) return first_error();
  const uint64_t total =
      rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
  if (row_cap_ != 0 && total > row_cap_) {
    // Count-free message: parallel emission sites race on *when* the
    // running total crosses the cap, but whether it crosses depends only
    // on the operator's total output, so the trip (and this message) is
    // deterministic across modes and thread counts.
    Fail(Status::ExecError("row cap exceeded: query materialized more than " +
                           std::to_string(row_cap_) + " rows"));
    return first_error();
  }
  return Status::OK();
}

Status QueryContext::ChargeMemory(const RelationSchema& schema,
                                  uint64_t rows) {
  if (failed_.load(std::memory_order_acquire)) return first_error();
  const uint64_t requested = rows * FootprintPerRow(schema);
  const uint64_t total =
      bytes_.fetch_add(requested, std::memory_order_relaxed) + requested;
  if (memory_budget_ != 0 && total > memory_budget_) {
    Fail(Status::ExecError(
        "memory budget exceeded: requested " + std::to_string(requested) +
        " bytes, budget " + std::to_string(memory_budget_) + " bytes"));
    return first_error();
  }
  return Status::OK();
}

Status QueryContext::ChargeOutput(const RelationSchema& schema,
                                  uint64_t rows) {
  EVIDENT_RETURN_NOT_OK(ChargeRows(rows));
  return ChargeMemory(schema, rows);
}

}  // namespace evident
