#ifndef EVIDENT_CORE_EXTENDED_RELATION_H_
#define EVIDENT_CORE_EXTENDED_RELATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/key_index.h"
#include "core/schema.h"
#include "core/tuple.h"

namespace evident {

class ColumnStore;

/// \brief The duplicate-key rejection every insert path reports —
/// shared by ExtendedRelation::InsertTrusted and the columnar operators
/// that replay the duplicate check over encoded keys (Project's
/// uniqueness pass, MergeTuples' rekey pass), whose messages must stay
/// byte-identical to the row path's.
Status MakeDuplicateKeyError(const KeyVector& key,
                             const std::string& relation_name);

/// \brief Transparent hash over encoded keys for callers that keep their
/// own key sets (e.g. MergeTuples' matched-key bookkeeping); pairs with
/// std::equal_to<> so string_view probes allocate nothing.
struct EncodedKeyHash {
  using is_transparent = void;
  size_t operator()(std::string_view key) const {
    return std::hash<std::string_view>()(key);
  }
};

/// \brief An extended relation (the paper's §2.3): tuples with definite
/// keys, evidence-set non-key attributes, and a per-tuple membership
/// support pair, stored under the generalized closed world assumption
/// CWA_ER.
///
/// CWA_ER: every *stored* tuple has sn > 0; a tuple not stored is
/// interpreted as having sn = 0 (no necessary support for its existence)
/// with unconstrained sp. Insert enforces this; InsertUnchecked exists so
/// tests and the boundedness property checker can materialize complement
/// relations whose hypothetical tuples have sn = 0.
///
/// A relation lives in one of two storage modes. Row mode is the
/// classic tuple store: inserts append rows and maintain the key index
/// eagerly (duplicate keys are rejected at insert time). Columnar mode
/// holds only a ColumnStore image — the columnar operators build their
/// outputs this way (AdoptColumns) so a result that is only ever
/// scanned column-at-a-time, or fed into the next columnar operator,
/// never pays for materializing row objects or an index it does not
/// probe. The row image and the key index are each materialized lazily
/// on first use and the relation behaves identically from then on; a
/// row-mode relation symmetrically caches its column image via
/// columns(). Lazy materialization is not thread-safe — operators touch
/// columns()/EnsureKeyIndex()/rows() once on the calling thread before
/// sharding work.
class ExtendedRelation {
 public:
  ExtendedRelation() = default;
  ExtendedRelation(std::string name, SchemaPtr schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// \brief Wraps a column image as a relation in columnar mode. The
  /// store's row keys must be unique — the operators' outputs guarantee
  /// this by construction (a relation's keys are unique and the
  /// operators only ever narrow or disjointly combine key sets); the
  /// lazily-built index does not re-check.
  static ExtendedRelation AdoptColumns(ColumnStore store);

  /// \brief AdoptColumns plus a fully built key index (the EVCIMG03
  /// loader's path, restoring the persisted index image so a loaded
  /// catalog probes without re-hashing every key). The index's rows must
  /// be the store's rows in order.
  static ExtendedRelation AdoptColumnsWithIndex(ColumnStore store,
                                                EncodedKeyIndex index);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const SchemaPtr& schema() const { return schema_; }

  size_t size() const;
  bool empty() const { return size() == 0; }
  const std::vector<ExtendedTuple>& rows() const {
    MaterializeRows();
    return rows_;
  }
  const ExtendedTuple& row(size_t i) const {
    MaterializeRows();
    return rows_[i];
  }

  /// \brief Pre-sizes the row store and key index for `n` tuples; used by
  /// the relational operators, whose output cardinality is known (or
  /// bounded) up front.
  void Reserve(size_t n) {
    rows_.reserve(n);
    key_index_.Reserve(n);
  }

  /// \brief Validates the tuple against the schema and CWA_ER (sn > 0)
  /// and appends it. Fails with AlreadyExists on a duplicate key.
  Status Insert(ExtendedTuple tuple);

  /// \brief Like Insert but skips the sn > 0 check (still validates
  /// shape, domains and 0 ≤ sn ≤ sp ≤ 1). For complements and tests.
  Status InsertUnchecked(ExtendedTuple tuple);

  /// \brief Appends a tuple already known to satisfy this relation's
  /// schema — cells taken (or combined) from relations validated against
  /// a union-compatible schema. Skips per-cell validation entirely; the
  /// duplicate-key check and key index are still maintained. This is the
  /// row-mode relational insert path: per-tuple revalidation of
  /// unchanged evidence sets dominated their cost.
  Status InsertTrusted(ExtendedTuple tuple);

  /// \brief The key of `tuple` under this relation's schema.
  KeyVector KeyOf(const ExtendedTuple& tuple) const;

  /// \brief Writes the canonical byte encoding of `tuple`'s key cells to
  /// `out` (cleared first) — the index's storage form. Probing with the
  /// encoded form through FindByEncodedKey avoids allocating a KeyVector
  /// (and its Value copies) per lookup.
  void EncodeKeyOf(const ExtendedTuple& tuple, std::string* out) const;

  /// \brief Index of the row with key `key`, or NotFound.
  Result<size_t> FindByKey(const KeyVector& key) const;
  bool ContainsKey(const KeyVector& key) const;

  /// \brief FindByKey over an already-encoded key (see EncodeKeyOf).
  Result<size_t> FindByEncodedKey(std::string_view key) const;
  bool ContainsEncodedKey(std::string_view key) const {
    return ProbeEncodedKey(key) != EncodedKeyIndex::kNoRow;
  }

  /// \brief The allocation-free probe form: the row holding `key`, or
  /// EncodedKeyIndex::kNoRow — no Status is built on a miss. The hot
  /// operator probe loops use this.
  uint32_t ProbeEncodedKey(std::string_view key) const {
    EnsureKeyIndex();
    return key_index_.Find(key);
  }

  /// \brief Builds the key index if this columnar-mode relation has not
  /// been probed yet (no-op in row mode). Operators call it before
  /// sharding probe loops across threads.
  void EnsureKeyIndex() const;

  /// \brief The column-major image of this relation: the native store in
  /// columnar mode, a lazily-built cached image in row mode (invalidated
  /// by inserts). See the class comment for thread-safety.
  const ColumnStore& columns() const;

  /// \brief True while this relation holds only its column image (rows
  /// not yet materialized). Storage decides how it is serialized: the
  /// column-image file format persists a columnar relation without ever
  /// building row objects.
  bool columnar_mode() const { return !rows_built_; }

  /// \brief How many times this relation converted its column image to
  /// row objects (0 or 1 per instance; copies inherit the count).
  /// Observability for tests asserting that columnar pipelines — e.g.
  /// save → load → scan through the column-image format — never
  /// materialize rows as a side effect.
  uint64_t rows_materialized() const { return rows_materialized_; }

  /// \brief Checks every stored tuple against the schema and the CWA_ER
  /// invariant; used by property tests and after deserialization.
  Status ValidateInvariants() const;

  /// \brief Structural near-equality (same schema, same keys mapping to
  /// tuples whose cells and membership agree within eps); row order is
  /// ignored, matching set semantics of relations.
  bool ApproxEquals(const ExtendedRelation& other, double eps = 1e-9) const;

  /// \brief Multi-line debug rendering (one tuple per line).
  std::string ToString(int mass_decimals = 6) const;

 private:
  Status ValidateTuple(const ExtendedTuple& tuple, bool require_positive_sn)
      const;
  Status InsertImpl(ExtendedTuple tuple, bool require_positive_sn,
                    bool validate);
  /// Row-mode entry for inserts: materializes rows and the index when
  /// the relation is still columnar, drops the stale column cache.
  void PrepareForInsert();
  void MaterializeRows() const;

  std::string name_;
  SchemaPtr schema_;
  mutable std::vector<ExtendedTuple> rows_;
  mutable EncodedKeyIndex key_index_;
  // Column image: the native store in columnar mode, a cache in row mode
  // (shared so copies of an unchanged relation reuse it; reset by any
  // insert — copy-on-write at relation level).
  mutable std::shared_ptr<const ColumnStore> columns_;
  mutable bool rows_built_ = true;
  mutable bool index_built_ = true;
  mutable uint64_t rows_materialized_ = 0;
};

}  // namespace evident

#endif  // EVIDENT_CORE_EXTENDED_RELATION_H_
