#ifndef EVIDENT_CORE_EXTENDED_RELATION_H_
#define EVIDENT_CORE_EXTENDED_RELATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/schema.h"
#include "core/tuple.h"

namespace evident {

/// \brief An extended relation (the paper's §2.3): tuples with definite
/// keys, evidence-set non-key attributes, and a per-tuple membership
/// support pair, stored under the generalized closed world assumption
/// CWA_ER.
///
/// CWA_ER: every *stored* tuple has sn > 0; a tuple not stored is
/// interpreted as having sn = 0 (no necessary support for its existence)
/// with unconstrained sp. Insert enforces this; InsertUnchecked exists so
/// tests and the boundedness property checker can materialize complement
/// relations whose hypothetical tuples have sn = 0.
class ExtendedRelation {
 public:
  ExtendedRelation() = default;
  ExtendedRelation(std::string name, SchemaPtr schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const SchemaPtr& schema() const { return schema_; }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<ExtendedTuple>& rows() const { return rows_; }
  const ExtendedTuple& row(size_t i) const { return rows_[i]; }

  /// \brief Pre-sizes the row store and key index for `n` tuples; used by
  /// the relational operators, whose output cardinality is known (or
  /// bounded) up front.
  void Reserve(size_t n) {
    rows_.reserve(n);
    key_index_.reserve(n);
  }

  /// \brief Validates the tuple against the schema and CWA_ER (sn > 0)
  /// and appends it. Fails with AlreadyExists on a duplicate key.
  Status Insert(ExtendedTuple tuple);

  /// \brief Like Insert but skips the sn > 0 check (still validates
  /// shape, domains and 0 ≤ sn ≤ sp ≤ 1). For complements and tests.
  Status InsertUnchecked(ExtendedTuple tuple);

  /// \brief Appends a tuple already known to satisfy this relation's
  /// schema — cells taken (or combined) from relations validated against
  /// a union-compatible schema. Skips per-cell validation entirely; the
  /// duplicate-key check and key index are still maintained. This is the
  /// relational operators' insert path: per-tuple revalidation of
  /// unchanged evidence sets dominated their cost.
  Status InsertTrusted(ExtendedTuple tuple);

  /// \brief InsertTrusted with the tuple's key already extracted —
  /// callers that just probed the key index (Union) hand it over instead
  /// of paying KeyOf + hashing again.
  Status InsertTrusted(ExtendedTuple tuple, KeyVector key);

  /// \brief The key of `tuple` under this relation's schema.
  KeyVector KeyOf(const ExtendedTuple& tuple) const;

  /// \brief Index of the row with key `key`, or NotFound.
  Result<size_t> FindByKey(const KeyVector& key) const;
  bool ContainsKey(const KeyVector& key) const;

  /// \brief Checks every stored tuple against the schema and the CWA_ER
  /// invariant; used by property tests and after deserialization.
  Status ValidateInvariants() const;

  /// \brief Structural near-equality (same schema, same keys mapping to
  /// tuples whose cells and membership agree within eps); row order is
  /// ignored, matching set semantics of relations.
  bool ApproxEquals(const ExtendedRelation& other, double eps = 1e-9) const;

  /// \brief Multi-line debug rendering (one tuple per line).
  std::string ToString(int mass_decimals = 6) const;

 private:
  Status ValidateTuple(const ExtendedTuple& tuple, bool require_positive_sn)
      const;
  Status InsertImpl(ExtendedTuple tuple, bool require_positive_sn,
                    bool validate);

  std::string name_;
  SchemaPtr schema_;
  std::vector<ExtendedTuple> rows_;
  std::unordered_map<KeyVector, size_t, KeyVectorHash> key_index_;
};

}  // namespace evident

#endif  // EVIDENT_CORE_EXTENDED_RELATION_H_
