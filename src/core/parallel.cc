#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <system_error>
#include <thread>
#include <vector>

namespace evident {

namespace {

/// 0 means "use the hardware default"; any positive value is an explicit
/// cap set through SetParallelMaxThreads.
std::atomic<size_t> g_max_threads{0};

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

void SetParallelMaxThreads(size_t n) {
  g_max_threads.store(n, std::memory_order_relaxed);
}

size_t ParallelMaxThreads() {
  const size_t configured = g_max_threads.load(std::memory_order_relaxed);
  return configured == 0 ? HardwareThreads() : configured;
}

size_t ParallelShardCount(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  const size_t by_grain = (n + grain - 1) / grain;
  return std::max<size_t>(1, std::min(ParallelMaxThreads(), by_grain));
}

void ParallelForShards(size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  ParallelForExactShards(n, ParallelShardCount(n, grain), fn);
}

void ParallelForExactShards(
    size_t n, size_t shard_count,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t shards = n == 0 ? 0 : std::min(std::max<size_t>(shard_count, 1), n);
  if (shards == 0) return;
  // Deterministic partition: the first (n % shards) shards get one extra
  // item, so boundaries depend only on (n, shards).
  const size_t base = n / shards;
  const size_t extra = n % shards;
  auto bounds = [&](size_t shard) {
    const size_t begin = shard * base + std::min(shard, extra);
    const size_t end = begin + base + (shard < extra ? 1 : 0);
    return std::pair<size_t, size_t>(begin, end);
  };
  if (shards == 1) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  size_t spawned = shards;  // first shard that could NOT be spawned
  for (size_t shard = 1; shard < shards; ++shard) {
    const auto [begin, end] = bounds(shard);
    try {
      workers.emplace_back(
          [&fn, shard, begin, end] { fn(shard, begin, end); });
    } catch (const std::system_error&) {
      // Thread creation failed (e.g. the process thread limit): degrade
      // gracefully — the unspawned shards run inline below. Letting the
      // exception unwind would destroy joinable threads and terminate.
      spawned = shard;
      break;
    }
  }
  const auto [begin0, end0] = bounds(0);
  fn(0, begin0, end0);
  for (size_t shard = spawned; shard < shards; ++shard) {
    const auto [begin, end] = bounds(shard);
    fn(shard, begin, end);
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace evident
