#include "core/parallel.h"

#include "core/query_context.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

namespace evident {

namespace {

/// 0 means "use the hardware default"; any positive value is an explicit
/// cap set through SetParallelMaxThreads.
std::atomic<size_t> g_max_threads{0};

size_t HardwareThreads() {
  // hardware_concurrency() may take a lock / read sysfs on some
  // platforms; the topology never changes mid-process, so query once.
  static const size_t cached = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? size_t{1} : static_cast<size_t>(hw);
  }();
  return cached;
}

/// True while the current thread is draining a morsel job (pool worker
/// or participating caller). Nested ParallelForMorsels calls run inline:
/// the pool's run mutex is held by the outer job, so queueing from a
/// worker would deadlock — and the outer job already owns the cores.
thread_local bool t_in_morsel_job = false;

/// \brief The persistent worker pool behind ParallelForMorsels.
///
/// One job at a time (run_mu_); the job is a shared atomic cursor over
/// [0, morsel_count) that helpers and the calling thread fetch_add from
/// until exhausted. Helpers are woken by a generation counter so a
/// stale wakeup can never re-enter a finished job, and the caller closes
/// the job under the state mutex before waiting out in-flight helpers —
/// a helper either observes the closed job and stays parked or was
/// already counted in helpers_running_ and is drained by done_cv_.
/// Helper writes to caller-owned output buffers are published by the
/// release/acquire pair on mu_ around that final handshake.
///
/// The singleton is leaked on purpose: worker threads park on job_cv_
/// forever, and tearing the pool down during static destruction would
/// race them.
class MorselPool {
 public:
  static MorselPool& Instance() {
    static MorselPool* pool = new MorselPool();
    return *pool;
  }

  void Run(size_t n, size_t grain, size_t morsel_count, size_t helper_cap,
           const std::function<void(size_t, size_t, size_t)>& fn) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    std::atomic<size_t> cursor{0};
    {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureWorkersLocked(helper_cap);
      job_.fn = &fn;
      job_.n = n;
      job_.grain = grain;
      job_.morsel_count = morsel_count;
      job_.cursor = &cursor;
      // The submitting thread's governor rides with the job: workers are
      // different threads, so the context must be carried explicitly —
      // CurrentQueryContext() is thread-local and a worker's own slot
      // belongs to whatever (if anything) that thread is running.
      job_.ctx = CurrentQueryContext();
      job_.helper_cap = std::min(helper_cap, workers_.size());
      job_.open = true;
      helpers_admitted_ = 0;
      ++generation_;
    }
    job_cv_.notify_all();
    Drain(job_);  // the caller participates; job_ fields are stable here
    std::unique_lock<std::mutex> lock(mu_);
    job_.open = false;
    done_cv_.wait(lock, [&] { return helpers_running_ == 0; });
  }

 private:
  struct Job {
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    size_t n = 0;
    size_t grain = 0;
    size_t morsel_count = 0;
    std::atomic<size_t>* cursor = nullptr;
    QueryContext* ctx = nullptr;  // the submitting thread's governor
    size_t helper_cap = 0;
    bool open = false;
  };

  /// Claims morsels from the shared cursor until none remain. Fixed
  /// boundaries: morsel m is [m*grain, min(n, (m+1)*grain)).
  ///
  /// Governed jobs (job.ctx != null) are polled once per claimed morsel:
  /// a tripped deadline/cancel makes every drainer stop claiming, the
  /// unexecuted morsels keep their callers' benign pre-initialized
  /// slots, and the operator reads the sticky first error off the
  /// context after the pass. Ungoverned execution pays one thread-local
  /// store/load pair per drain.
  ///
  /// The job's context is installed in this thread's ambient slot for
  /// the drain so the morsel fn's own CurrentQueryContext() calls (the
  /// operator layer charges rows from inside morsels) resolve to the
  /// *submitting* thread's governor, not to whatever this worker thread
  /// ran last.
  static void Drain(const Job& job) {
    const bool was_in_job = t_in_morsel_job;
    t_in_morsel_job = true;
    ScopedQueryContext ambient(job.ctx);
    for (;;) {
      const size_t m = job.cursor->fetch_add(1, std::memory_order_relaxed);
      if (m >= job.morsel_count) break;
      if (job.ctx != nullptr && !job.ctx->PollMorsel().ok()) break;
      const size_t begin = m * job.grain;
      (*job.fn)(m, begin, std::min(job.n, begin + job.grain));
    }
    t_in_morsel_job = was_in_job;
  }

  /// Grows the pool to `count` parked workers. Spawn failure (process
  /// thread limit) degrades gracefully: the job runs on whatever helpers
  /// exist plus the caller. Requires mu_ held.
  void EnsureWorkersLocked(size_t count) {
    while (workers_.size() < count) {
      try {
        workers_.emplace_back([this] { WorkerLoop(); });
        workers_.back().detach();  // joined never: the pool is immortal
      } catch (const std::system_error&) {
        break;
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      job_cv_.wait(lock, [&] { return job_.open && generation_ != seen; });
      seen = generation_;
      if (helpers_admitted_ >= job_.helper_cap) continue;
      ++helpers_admitted_;
      ++helpers_running_;
      const Job job = job_;
      lock.unlock();
      Drain(job);
      lock.lock();
      if (--helpers_running_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes concurrent top-level Run callers
  std::mutex mu_;      // guards job_, counters; publishes helper writes
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  Job job_;
  uint64_t generation_ = 0;
  size_t helpers_admitted_ = 0;  // helpers that joined the current job
  size_t helpers_running_ = 0;   // helpers still draining it
  std::vector<std::thread> workers_;
};

}  // namespace

void SetParallelMaxThreads(size_t n) {
  g_max_threads.store(n, std::memory_order_relaxed);
}

size_t ParallelMaxThreads() {
  const size_t configured = g_max_threads.load(std::memory_order_relaxed);
  return configured == 0 ? HardwareThreads() : configured;
}

size_t ParallelShardCount(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  const size_t by_grain = (n + grain - 1) / grain;
  return std::max<size_t>(1, std::min(ParallelMaxThreads(), by_grain));
}

void ParallelForShards(size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  ParallelForExactShards(n, ParallelShardCount(n, grain), fn);
}

void ParallelForExactShards(
    size_t n, size_t shard_count,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t shards = n == 0 ? 0 : std::min(std::max<size_t>(shard_count, 1), n);
  if (shards == 0) return;
  // Deterministic partition: the first (n % shards) shards get one extra
  // item, so boundaries depend only on (n, shards).
  const size_t base = n / shards;
  const size_t extra = n % shards;
  auto bounds = [&](size_t shard) {
    const size_t begin = shard * base + std::min(shard, extra);
    const size_t end = begin + base + (shard < extra ? 1 : 0);
    return std::pair<size_t, size_t>(begin, end);
  };
  if (shards == 1) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  size_t spawned = shards;  // first shard that could NOT be spawned
  // Fresh threads start with an empty thread-local context slot; hand
  // them the caller's governor so shard fns see the same ambient context
  // they would inline.
  QueryContext* const ctx = CurrentQueryContext();
  for (size_t shard = 1; shard < shards; ++shard) {
    const auto [begin, end] = bounds(shard);
    try {
      workers.emplace_back([&fn, ctx, shard, begin, end] {
        ScopedQueryContext ambient(ctx);
        fn(shard, begin, end);
      });
    } catch (const std::system_error&) {
      // Thread creation failed (e.g. the process thread limit): degrade
      // gracefully — the unspawned shards run inline below. Letting the
      // exception unwind would destroy joinable threads and terminate.
      spawned = shard;
      break;
    }
  }
  const auto [begin0, end0] = bounds(0);
  fn(0, begin0, end0);
  for (size_t shard = spawned; shard < shards; ++shard) {
    const auto [begin, end] = bounds(shard);
    fn(shard, begin, end);
  }
  for (std::thread& w : workers) w.join();
}

size_t ParallelMorselCount(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

void ParallelForMorsels(size_t n, size_t grain,
                        const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t morsels = (n + grain - 1) / grain;
  const size_t workers = std::min(ParallelMaxThreads(), morsels);
  if (morsels == 1 || workers <= 1 || t_in_morsel_job) {
    // Tiny input or nested call: skip the queue entirely — same morsel
    // boundaries, same results, no scheduler overhead. Same per-morsel
    // governor poll as the pool's Drain.
    QueryContext* const ctx = CurrentQueryContext();
    for (size_t m = 0; m < morsels; ++m) {
      if (ctx != nullptr && !ctx->PollMorsel().ok()) break;
      const size_t begin = m * grain;
      fn(m, begin, std::min(n, begin + grain));
    }
    return;
  }
  MorselPool::Instance().Run(n, grain, morsels, workers - 1, fn);
}

}  // namespace evident
