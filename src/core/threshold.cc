#include "core/threshold.h"

#include <cmath>

#include "common/math_util.h"
#include "common/str_util.h"

namespace evident {

namespace {
const char* FieldName(MembershipThreshold::Field f) {
  return f == MembershipThreshold::Field::kSn ? "sn" : "sp";
}
const char* CmpName(MembershipThreshold::Cmp c) {
  switch (c) {
    case MembershipThreshold::Cmp::kGt:
      return ">";
    case MembershipThreshold::Cmp::kGe:
      return ">=";
    case MembershipThreshold::Cmp::kEq:
      return "=";
    case MembershipThreshold::Cmp::kLt:
      return "<";
    case MembershipThreshold::Cmp::kLe:
      return "<=";
  }
  return "?";
}
}  // namespace

bool MembershipThreshold::Atom::Accepts(const SupportPair& m) const {
  const double x = field == Field::kSn ? m.sn : m.sp;
  switch (cmp) {
    case Cmp::kGt:
      return x > bound;
    case Cmp::kGe:
      return x >= bound - kMassEpsilon;
    case Cmp::kEq:
      return ApproxEqual(x, bound);
    case Cmp::kLt:
      return x < bound;
    case Cmp::kLe:
      return x <= bound + kMassEpsilon;
  }
  return false;
}

std::string MembershipThreshold::Atom::ToString() const {
  return std::string(FieldName(field)) + " " + CmpName(cmp) + " " +
         FormatMass(bound);
}

MembershipThreshold MembershipThreshold::SnGreater(double bound) {
  MembershipThreshold t;
  t.AndAlso(Field::kSn, Cmp::kGt, bound);
  return t;
}

MembershipThreshold MembershipThreshold::SnAtLeast(double bound) {
  MembershipThreshold t;
  t.AndAlso(Field::kSn, Cmp::kGe, bound);
  return t;
}

MembershipThreshold MembershipThreshold::SnEquals(double bound) {
  MembershipThreshold t;
  t.AndAlso(Field::kSn, Cmp::kEq, bound);
  return t;
}

MembershipThreshold MembershipThreshold::SpGreater(double bound) {
  MembershipThreshold t;
  t.AndAlso(Field::kSp, Cmp::kGt, bound);
  return t;
}

MembershipThreshold MembershipThreshold::SpAtLeast(double bound) {
  MembershipThreshold t;
  t.AndAlso(Field::kSp, Cmp::kGe, bound);
  return t;
}

MembershipThreshold& MembershipThreshold::AndAlso(Field field, Cmp cmp,
                                                  double bound) {
  atoms_.push_back(Atom{field, cmp, bound});
  return *this;
}

bool MembershipThreshold::Accepts(const SupportPair& m) const {
  for (const Atom& a : atoms_) {
    if (!a.Accepts(m)) return false;
  }
  return true;
}

std::string MembershipThreshold::ToString() const {
  if (atoms_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) out += " and ";
    out += atoms_[i].ToString();
  }
  return out;
}

}  // namespace evident
