#include "core/join_plan.h"

#include <algorithm>

namespace evident {

void FlattenConjuncts(const PredicatePtr& predicate,
                      std::vector<PredicatePtr>* out) {
  if (const auto* conj = dynamic_cast<const AndPredicate*>(predicate.get())) {
    if (!conj->children().empty()) {
      for (const PredicatePtr& child : conj->children()) {
        FlattenConjuncts(child, out);
      }
      return;
    }
    // An empty conjunction fails per tuple in AndPredicate::Evaluate;
    // keep it as a leaf so analysis reports the same error at plan time.
  }
  out->push_back(predicate);
}

namespace {

/// True when the attribute at `index` of the product schema holds a
/// definite value in every tuple — the trusted-cell requirement for hash
/// partitioning (evidence cells only ever yield graded support).
bool IsDefiniteAttribute(const RelationSchema& schema, size_t index) {
  const AttributeKind kind = schema.attribute(index).kind;
  return kind == AttributeKind::kKey || kind == AttributeKind::kDefinite;
}

}  // namespace

Result<JoinPlan> AnalyzeJoinPredicate(const PredicatePtr& predicate,
                                      const RelationSchema& product_schema,
                                      size_t left_attr_count) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null join predicate");
  }
  std::vector<PredicatePtr> conjuncts;
  FlattenConjuncts(predicate, &conjuncts);

  JoinPlan plan;
  std::vector<PredicatePtr> residual;
  for (const PredicatePtr& conjunct : conjuncts) {
    if (dynamic_cast<const AndPredicate*>(conjunct.get()) != nullptr) {
      return Status::InvalidArgument("empty conjunction");
    }
    if (const auto* is_pred =
            dynamic_cast<const IsPredicate*>(conjunct.get())) {
      // IS-conditions are single-sided filters, never join keys; checking
      // the reference here keeps unresolvable names an error exactly as
      // evaluation over the product would make them.
      EVIDENT_ASSIGN_OR_RETURN(size_t index,
                               product_schema.IndexOf(is_pred->attribute()));
      // Over an uncertain attribute, evaluation resolves the named
      // constants against the frame for *every* tuple; resolve them once
      // here so a constant outside the frame fails the join whether or
      // not any pair hash-matches (as it fails Select over the product).
      const AttributeDef& attr = product_schema.attribute(index);
      if (attr.is_uncertain()) {
        for (const Value& v : is_pred->values()) {
          EVIDENT_RETURN_NOT_OK(attr.domain->IndexOf(v).status());
        }
      }
      residual.push_back(conjunct);
      continue;
    }
    const auto* theta = dynamic_cast<const ThetaPredicate*>(conjunct.get());
    if (theta == nullptr) {
      residual.push_back(conjunct);
      continue;
    }
    size_t lhs_index = 0, rhs_index = 0;
    bool lhs_is_attr = theta->lhs().is_attribute();
    bool rhs_is_attr = theta->rhs().is_attribute();
    if (lhs_is_attr) {
      EVIDENT_ASSIGN_OR_RETURN(lhs_index,
                               product_schema.IndexOf(theta->lhs().attribute()));
    }
    if (rhs_is_attr) {
      EVIDENT_ASSIGN_OR_RETURN(rhs_index,
                               product_schema.IndexOf(theta->rhs().attribute()));
    }
    const bool equi =
        theta->op() == ThetaOp::kEq && lhs_is_attr && rhs_is_attr &&
        IsDefiniteAttribute(product_schema, lhs_index) &&
        IsDefiniteAttribute(product_schema, rhs_index) &&
        (lhs_index < left_attr_count) != (rhs_index < left_attr_count);
    if (!equi) {
      residual.push_back(conjunct);
      continue;
    }
    const size_t left_side = std::min(lhs_index, rhs_index);
    const size_t right_side = std::max(lhs_index, rhs_index);
    plan.keys.push_back(EquiKey{left_side, right_side - left_attr_count});
  }

  if (residual.size() == 1) {
    plan.residual = residual.front();
  } else if (!residual.empty()) {
    plan.residual = And(std::move(residual));
  }
  return plan;
}

std::vector<MultiJoinEdge> AnalyzeMultiJoinEdges(
    const PredicatePtr& predicate, const RelationSchema& product_schema,
    const std::vector<size_t>& operand_attr_counts) {
  std::vector<MultiJoinEdge> edges;
  if (predicate == nullptr) return edges;
  std::vector<PredicatePtr> conjuncts;
  FlattenConjuncts(predicate, &conjuncts);
  // Flat product position -> (operand, operand-local position).
  auto locate = [&](size_t flat) {
    size_t op = 0;
    while (flat >= operand_attr_counts[op]) {
      flat -= operand_attr_counts[op];
      ++op;
    }
    return std::pair<size_t, size_t>{op, flat};
  };
  for (const PredicatePtr& conjunct : conjuncts) {
    const auto* theta = dynamic_cast<const ThetaPredicate*>(conjunct.get());
    if (theta == nullptr || theta->op() != ThetaOp::kEq) continue;
    if (!theta->lhs().is_attribute() || !theta->rhs().is_attribute()) continue;
    auto lhs = product_schema.IndexOf(theta->lhs().attribute());
    auto rhs = product_schema.IndexOf(theta->rhs().attribute());
    if (!lhs.ok() || !rhs.ok()) continue;
    if (!IsDefiniteAttribute(product_schema, *lhs) ||
        !IsDefiniteAttribute(product_schema, *rhs)) {
      continue;
    }
    const auto [lop, lidx] = locate(*lhs);
    const auto [rop, ridx] = locate(*rhs);
    if (lop == rop) continue;
    edges.push_back(MultiJoinEdge{lop, lidx, rop, ridx});
  }
  return edges;
}

}  // namespace evident
